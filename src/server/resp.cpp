#include "server/resp.hpp"

#include <limits>
#include <stdexcept>

#include "util/stats.hpp"

namespace rg::server {

// Encoders build with append() rather than operator+ chains: GCC 12's
// -Wrestrict fires a false positive on `"lit" + std::string&&` at -O3
// (GCC PR 105651), and append() is one fewer temporary anyway.

std::string resp_simple(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 3);
  out.push_back('+');
  out.append(s).append("\r\n");
  return out;
}

std::string resp_error(const std::string& s) {
  // RESP errors are line-delimited, and some error texts echo client
  // bytes (unknown-command args, malformed numbers).  A CR/LF smuggled
  // through a length-prefixed bulk argument would terminate the error
  // early and desynchronize every later reply on the connection, so
  // newlines are flattened to spaces — same as Redis.
  //
  // An error text that LEADS with an error code — a space-delimited
  // first token of 2+ uppercase letters, like Redis's "READONLY ..." or
  // "NOSYNC ..." — goes on the wire verbatim; everything else gets the
  // generic "ERR " code.  Clients key replica/resync handling off that
  // first token, so it must not be buried behind ERR.
  std::size_t code_len = 0;
  while (code_len < s.size() && s[code_len] >= 'A' && s[code_len] <= 'Z')
    ++code_len;
  const bool coded = code_len >= 2 &&
                     (code_len == s.size() || s[code_len] == ' ');
  std::string out;
  out.reserve(s.size() + 7);
  out.push_back('-');
  if (!coded) out.append("ERR ");
  for (const char c : s) out += (c == '\r' || c == '\n') ? ' ' : c;
  out.append("\r\n");
  return out;
}

std::string resp_integer(long long v) {
  std::string out(1, ':');
  out.append(std::to_string(v)).append("\r\n");
  return out;
}

std::string resp_bulk(const std::string& s) {
  std::string out(1, '$');
  out.append(std::to_string(s.size())).append("\r\n").append(s).append("\r\n");
  return out;
}

std::string resp_array(const std::vector<std::string>& elems) {
  std::string out(1, '*');
  out.append(std::to_string(elems.size())).append("\r\n");
  for (const auto& e : elems) out += e;
  return out;
}

namespace {

std::string encode_value(const graph::Value& v) {
  using graph::Value;
  switch (v.type()) {
    case Value::Type::kNull:
      return "$-1\r\n";  // RESP null bulk
    case Value::Type::kInt:
      return resp_integer(v.as_int());
    case Value::Type::kBool:
      return resp_integer(v.as_bool() ? 1 : 0);
    case Value::Type::kArray: {
      std::vector<std::string> elems;
      for (const auto& x : v.as_array()) elems.push_back(encode_value(x));
      return resp_array(elems);
    }
    case Value::Type::kString:
      return resp_bulk(v.as_string());
    default:
      return resp_bulk(v.to_string());
  }
}

}  // namespace

std::string encode_result_set(const exec::ResultSet& rs) {
  std::vector<std::string> sections;

  // Section 1: column headers.
  {
    std::vector<std::string> headers;
    for (const auto& c : rs.columns) headers.push_back(resp_bulk(c));
    sections.push_back(resp_array(headers));
  }
  // Section 2: rows.
  {
    std::vector<std::string> rows;
    for (const auto& row : rs.rows) {
      std::vector<std::string> cells;
      for (const auto& v : row) cells.push_back(encode_value(v));
      rows.push_back(resp_array(cells));
    }
    sections.push_back(resp_array(rows));
  }
  // Section 3: statistics strings (as RedisGraph emits them).
  {
    std::vector<std::string> stats;
    auto stat = [&](std::uint64_t v, const char* label) {
      if (v)
        stats.push_back(resp_bulk(std::string(label) + ": " + std::to_string(v)));
    };
    stat(rs.stats.nodes_created, "Nodes created");
    stat(rs.stats.edges_created, "Relationships created");
    stat(rs.stats.nodes_deleted, "Nodes deleted");
    stat(rs.stats.edges_deleted, "Relationships deleted");
    stat(rs.stats.properties_set, "Properties set");
    stat(rs.stats.indexes_created, "Indices created");
    stats.push_back(resp_bulk(
        "Query internal execution time: " +
        util::fmt_double(rs.stats.execution_ms, 6) + " milliseconds"));
    sections.push_back(resp_array(stats));
  }
  return resp_array(sections);
}

std::string encode_command(const std::vector<std::string>& argv) {
  std::vector<std::string> elems;
  elems.reserve(argv.size());
  for (const auto& a : argv) elems.push_back(resp_bulk(a));
  return resp_array(elems);
}

// ---------------------------------------------------------------------------
// RespRequestParser
// ---------------------------------------------------------------------------

namespace {

/// Parse a base-10 integer occupying the whole of `s` (optional leading
/// '-').  Returns false on empty/garbage input — strtoll would silently
/// accept trailing junk, which a wire protocol must not.
bool parse_strict_int(std::string_view s, long long& out) {
  if (s.empty()) return false;
  std::size_t i = 0;
  bool neg = false;
  if (s[0] == '-') {
    neg = true;
    i = 1;
    if (s.size() == 1) return false;
  }
  long long v = 0;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    if (v > (std::numeric_limits<long long>::max() - 9) / 10) return false;
    v = v * 10 + (s[i] - '0');
  }
  out = neg ? -v : v;
  return true;
}

}  // namespace

void RespRequestParser::compact() {
  // Reclaim the consumed prefix once it dominates the buffer.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
}

RespRequestParser::Result RespRequestParser::protocol_error(
    const std::string& msg) {
  // Discard EVERYTHING buffered.  Re-scanning the remainder would let
  // bytes the client sent as frame *payload* be reinterpreted as
  // commands (an injection vector — a blob containing
  // "GRAPH.DELETE g\r\n" must never execute).  The connection itself
  // survives: commands arriving after this error work normally.
  pos_ = buf_.size();
  compact();
  Result r;
  r.status = Status::kError;
  r.error = "Protocol error: " + msg;
  return r;
}

RespRequestParser::Result RespRequestParser::next() {
  for (;;) {
    compact();
    if (pos_ >= buf_.size()) return {};  // kNeedMore

    if (buf_[pos_] != '*') {
      // Inline command: one line, whitespace-separated, quotes honored.
      // A line ends at the first '\n' ('\r\n' or bare '\n', as Redis
      // accepts for telnet); searching for "\r\n" first would glue an
      // LF-terminated command to its successor.
      const auto lf = buf_.find('\n', pos_);
      if (lf == std::string::npos) {
        if (buffered() > kMaxInlineBytes)
          return protocol_error("too big inline request");
        return {};
      }
      std::string line = buf_.substr(pos_, lf - pos_);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      pos_ = lf + 1;
      if (line.size() > kMaxInlineBytes)
        return protocol_error("too big inline request");
      if (line.empty()) continue;  // stray newline keep-alive
      Result r;
      r.status = Status::kOk;
      r.argv = split_command_line(line);
      if (r.argv.empty()) continue;
      return r;
    }

    // Multibulk: *<count>\r\n then <count> x ($<len>\r\n<bytes>\r\n).
    const std::size_t frame_start = pos_;
    const auto count_end = buf_.find("\r\n", pos_);
    if (count_end == std::string::npos) {
      if (buffered() > kMaxInlineBytes)
        return protocol_error("multibulk count line too long");
      return {};
    }
    long long count = 0;
    if (!parse_strict_int(
            std::string_view(buf_).substr(pos_ + 1, count_end - pos_ - 1),
            count) ||
        count < 0)
      return protocol_error("invalid multibulk length");
    if (static_cast<unsigned long long>(count) > kMaxArgs)
      return protocol_error("multibulk length too large");

    std::size_t cur = count_end + 2;
    std::vector<std::string> argv;
    argv.reserve(static_cast<std::size_t>(count));
    for (long long i = 0; i < count; ++i) {
      if (cur >= buf_.size()) {
        pos_ = frame_start;  // incomplete: re-parse once more bytes arrive
        return {};
      }
      if (buf_[cur] != '$') {
        return protocol_error("expected '$', got '" +
                              std::string(1, buf_[cur]) + "'");
      }
      const auto len_end = buf_.find("\r\n", cur);
      if (len_end == std::string::npos) {
        pos_ = frame_start;
        return {};
      }
      long long len = 0;
      if (!parse_strict_int(
              std::string_view(buf_).substr(cur + 1, len_end - cur - 1),
              len) ||
          len < 0)
        return protocol_error("invalid bulk length");
      // Cap the whole frame (framing + payloads), so buffering is
      // bounded and a maximal single bulk still fits.
      if (len_end + 2 - frame_start + static_cast<std::size_t>(len) + 2 >
          kMaxFrameBytes)
        return protocol_error("multibulk frame too large");
      const std::size_t payload = len_end + 2;
      if (payload + static_cast<std::size_t>(len) + 2 > buf_.size()) {
        pos_ = frame_start;
        return {};
      }
      if (buf_[payload + len] != '\r' || buf_[payload + len + 1] != '\n') {
        return protocol_error("bulk string missing trailing CRLF");
      }
      argv.emplace_back(buf_, payload, static_cast<std::size_t>(len));
      cur = payload + static_cast<std::size_t>(len) + 2;
    }
    pos_ = cur;
    if (argv.empty()) continue;  // *0\r\n — ignore, as Redis does
    compact();
    Result r;
    r.status = Status::kOk;
    r.argv = std::move(argv);
    return r;
  }
}

// ---------------------------------------------------------------------------
// Reply decoding
// ---------------------------------------------------------------------------

namespace {

/// Decode one reply starting at `at`; returns one-past-the-end offset or
/// 0 when incomplete.
std::size_t decode_at(std::string_view buf, std::size_t at, RespValue& out) {
  if (at >= buf.size()) return 0;
  const auto crlf = buf.find("\r\n", at);
  if (crlf == std::string::npos) return 0;
  const std::string_view line = buf.substr(at + 1, crlf - at - 1);
  switch (buf[at]) {
    case '+':
      out.kind = RespValue::Kind::kSimple;
      out.text = std::string(line);
      return crlf + 2;
    case '-':
      out.kind = RespValue::Kind::kError;
      out.text = std::string(line);
      return crlf + 2;
    case ':': {
      long long v = 0;
      if (!parse_strict_int(line, v))
        throw std::runtime_error("RESP: bad integer reply");
      out.kind = RespValue::Kind::kInteger;
      out.integer = v;
      return crlf + 2;
    }
    case '$': {
      long long len = 0;
      if (!parse_strict_int(line, len) || len < -1)
        throw std::runtime_error("RESP: bad bulk length");
      if (len == -1) {
        out.kind = RespValue::Kind::kNull;
        return crlf + 2;
      }
      const std::size_t payload = crlf + 2;
      if (payload + static_cast<std::size_t>(len) + 2 > buf.size()) return 0;
      if (buf[payload + len] != '\r' || buf[payload + len + 1] != '\n')
        throw std::runtime_error("RESP: bulk missing trailing CRLF");
      out.kind = RespValue::Kind::kBulk;
      out.text = std::string(buf.substr(payload, static_cast<std::size_t>(len)));
      return payload + static_cast<std::size_t>(len) + 2;
    }
    case '*': {
      long long count = 0;
      if (!parse_strict_int(line, count) || count < -1)
        throw std::runtime_error("RESP: bad array length");
      if (count == -1) {
        out.kind = RespValue::Kind::kNull;
        return crlf + 2;
      }
      out.kind = RespValue::Kind::kArray;
      out.elems.clear();
      std::size_t cur = crlf + 2;
      for (long long i = 0; i < count; ++i) {
        RespValue elem;
        const std::size_t next = decode_at(buf, cur, elem);
        if (next == 0) return 0;
        out.elems.push_back(std::move(elem));
        cur = next;
      }
      return cur;
    }
    default:
      throw std::runtime_error("RESP: unknown reply type byte '" +
                               std::string(1, buf[at]) + "'");
  }
}

}  // namespace

std::size_t decode_reply(std::string_view buf, RespValue& out) {
  return decode_at(buf, 0, out);
}

std::vector<std::string> split_command_line(const std::string& line) {
  std::vector<std::string> argv;
  std::string cur;
  bool in_single = false, in_double = false, has_token = false;
  for (char c : line) {
    if (in_single) {
      if (c == '\'') in_single = false;
      else cur += c;
    } else if (in_double) {
      if (c == '"') in_double = false;
      else cur += c;
    } else if (c == '\'') {
      in_single = true;
      has_token = true;
    } else if (c == '"') {
      in_double = true;
      has_token = true;
    } else if (c == ' ' || c == '\t' || c == '\r') {
      if (has_token || !cur.empty()) {
        argv.push_back(std::move(cur));
        cur.clear();
        has_token = false;
      }
    } else {
      cur += c;
      has_token = true;
    }
  }
  if (has_token || !cur.empty()) argv.push_back(std::move(cur));
  return argv;
}

}  // namespace rg::server

// NetServer — the TCP RESP front-end that turns the in-process Server
// into a network service plain Redis clients can talk to.
//
// Threading model (mirroring the module architecture the paper assumes):
//  * one **acceptor** thread blocks in accept() on the listening socket,
//  * each connection gets a lightweight **reader** thread that decodes
//    RESP frames (server/resp.hpp RespRequestParser) and forwards every
//    complete command to Server::submit() — i.e. into the fixed worker
//    pool, where each query executes on exactly one worker,
//  * pipelining: all commands already buffered are submitted as a batch,
//    so a pipelined burst fans out across workers; replies are written
//    back strictly in request order, as RESP requires.
//
// Protocol errors produce an -ERR reply and the parser resynchronizes;
// the connection is only closed on EOF or socket failure.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "server/server.hpp"
#include "util/socket.hpp"
#include "util/sync.hpp"

namespace rg::server {

class NetServer {
 public:
  /// Serve `core` on `port` (0 = pick an ephemeral port, read back with
  /// port()).  `loopback_only` binds 127.0.0.1 (the safe default).
  /// The listener is live when the constructor returns.
  explicit NetServer(Server& core, std::uint16_t port = 0,
                     bool loopback_only = true);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound TCP port.
  std::uint16_t port() const noexcept { return listener_.port(); }

  /// Lifetime connection counter (accepted, including closed ones).
  std::uint64_t connections_accepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }

  /// Stop accepting, close every connection, join all threads.  Called
  /// by the destructor; safe to call twice.
  void stop();

 private:
  struct Connection;

  void accept_loop();
  void serve_connection(std::shared_ptr<Connection> conn);
  void reap_finished_locked() RG_REQUIRES(conns_mu_);

  Server& core_;
  util::TcpListener listener_;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> accepted_{0};

  util::Mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_ RG_GUARDED_BY(conns_mu_);
};

}  // namespace rg::server

// Redis-like server substrate hosting the graph module.
//
// Mirrors the architecture the paper describes (Section II):
//  * a single **dispatcher** thread owns command intake (Redis's main
//    thread); commands arrive via submit() and are forwarded to
//  * a fixed **worker pool** whose size is set at construction (the
//    module's load-time THREAD_COUNT): each query executes entirely on
//    one worker thread — queries never parallelize across workers,
//  * per-graph reader/writer locks let read queries run concurrently
//    while writes serialize (RedisGraph's lock around the graph object),
//  * per-graph **plan caches** (exec::PlanCache) give repeated queries
//    RedisGraph's cached-plan fast path: parameterized variants of one
//    query text skip lexer -> parser -> planner.
//
// This class is the in-process core: embedders (tests, benchmarks) call
// submit()/execute() directly.  The TCP RESP front-end that real socket
// clients (redis-cli, examples/resp_client) talk to lives in
// server/net_server.hpp and feeds this same dispatcher/worker model.
//
// Commands: GRAPH.QUERY, GRAPH.RO_QUERY, GRAPH.EXPLAIN, GRAPH.PROFILE,
// GRAPH.DELETE, GRAPH.LIST, GRAPH.SAVE, GRAPH.RESTORE, GRAPH.CONFIG, PING.
//
// Query texts may carry a RedisGraph-style parameter header:
//   "CYPHER name=1 handle='bob' MATCH (n {handle: $handle}) RETURN n"

#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "exec/plan_cache.hpp"
#include "exec/result_set.hpp"
#include "graph/graph.hpp"
#include "server/resp.hpp"
#include "util/thread_pool.hpp"

namespace rg::server {

/// A command reply: either an error, a status string, a payload string
/// (EXPLAIN/PROFILE) or a full result set.
struct Reply {
  enum class Kind { kStatus, kError, kText, kResult };
  Kind kind = Kind::kStatus;
  std::string text;       // status / error / explain text
  exec::ResultSet result;

  bool ok() const { return kind != Kind::kError; }

  /// RESP wire encoding.
  std::string to_resp() const {
    switch (kind) {
      case Kind::kStatus: return resp_simple(text);
      case Kind::kError: return resp_error(text);
      case Kind::kText: return resp_bulk(text);
      case Kind::kResult: return encode_result_set(result);
    }
    return resp_error("internal");
  }
};

class Server {
 public:
  /// `worker_threads` = module THREAD_COUNT (fixed at load time).
  explicit Server(std::size_t worker_threads = 4);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Asynchronous command submission (the client API): the dispatcher
  /// assigns the command to one worker; the future resolves when that
  /// worker finishes.  argv[0] is the command name.
  std::future<Reply> submit(std::vector<std::string> argv);

  /// Synchronous convenience: submit and wait.
  Reply execute(std::vector<std::string> argv);

  /// Parse a space-separated command line (quotes respected) and execute.
  Reply execute_line(const std::string& line);

  /// Direct access to a graph (benchmarks seed data through this without
  /// paying the Cypher write path).  Creates the graph if absent.
  graph::Graph& graph_for_testing(const std::string& key);

  std::size_t worker_count() const;

  /// Aggregate plan-cache counters across every graph in the keyspace
  /// (what GRAPH.CONFIG GET PLAN_CACHE_* reports).
  exec::PlanCache::Counters plan_cache_counters() const;

 private:
  struct GraphEntry {
    explicit GraphEntry(std::size_t cache_capacity)
        : plan_cache(cache_capacity) {}
    graph::Graph graph;
    std::shared_mutex lock;
    exec::PlanCache plan_cache;
  };

  Reply dispatch(const std::vector<std::string>& argv);
  Reply cmd_query(const std::string& key, const std::string& raw,
                  bool read_only_cmd, bool profile);
  Reply cmd_explain(const std::string& key, const std::string& text);
  Reply cmd_delete(const std::string& key);
  Reply cmd_list();
  Reply cmd_save(const std::string& key, const std::string& path);
  Reply cmd_restore(const std::string& key, const std::string& path);
  Reply cmd_config(const std::vector<std::string>& argv);

  /// Shared ownership: a command holds the returned pointer for its whole
  /// execution, so GRAPH.DELETE/RESTORE can unlink an entry from the
  /// keyspace while stragglers (including threads still blocked on
  /// entry->lock) finish safely — the entry dies with its last user.
  std::shared_ptr<GraphEntry> entry_for(const std::string& key);

  /// Fold a dying entry's cache counters into retired_counters_ so the
  /// CONFIG GET aggregate stays monotonic across GRAPH.DELETE/RESTORE.
  void retire_counters_locked(const GraphEntry& entry);

  mutable std::mutex keyspace_mu_;
  std::map<std::string, std::shared_ptr<GraphEntry>> keyspace_;
  std::size_t plan_cache_capacity_ = exec::PlanCache::kDefaultCapacity;
  exec::PlanCache::Counters retired_counters_;
  std::unique_ptr<util::ThreadPool> workers_;
};

}  // namespace rg::server

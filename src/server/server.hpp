// Redis-like server substrate hosting the graph module.
//
// Mirrors the architecture the paper describes (Section II):
//  * a single **dispatcher** thread owns command intake (Redis's main
//    thread): commands arrive via submit() and are forwarded to
//  * a fixed **worker pool** whose size is set at construction (the
//    module's load-time THREAD_COUNT): each query executes entirely on
//    one worker thread — queries never parallelize across workers,
//  * per-graph reader/writer locks let read queries run concurrently
//    while writes serialize (RedisGraph's lock around the graph object),
//  * per-graph **plan caches** (exec::PlanCache) give repeated queries
//    RedisGraph's cached-plan fast path: parameterized variants of one
//    query text skip lexer -> parser -> planner.
//
// Every client-facing operation is a row in the declarative command
// table (server/command.hpp), exactly as RedisGraph registers its
// commands with the Redis host: dispatch() is registry lookup + arity
// and flag enforcement + per-command metrics, never per-command code.
// The table drives locking (kWrite -> exclusive), WAL journaling
// (kWrite commands journal through CommandCtx; nothing else can) and
// the introspection surface (COMMAND, GRAPH.INFO commandstats,
// GRAPH.SLOWLOG).
//
// This class is the in-process core: embedders (tests, benchmarks) call
// submit()/execute() directly.  The TCP RESP front-end that real socket
// clients (redis-cli, examples/resp_client) talk to lives in
// server/net_server.hpp and feeds this same dispatcher/worker model.
//
// Durability (optional, src/persist): with a configured data dir every
// mutating command is journaled to a CRC-framed write-ahead log after
// it commits and before its reply is released (the role Redis AOF plays
// for RedisGraph), background rewrites snapshot the keyspace in RGR1
// format and truncate the log, and construction replays snapshot + WAL
// so a crashed server comes back with every acknowledged write (modulo
// the chosen fsync policy).
//
// Commands (see `COMMAND` or the README reference): GRAPH.QUERY,
// GRAPH.RO_QUERY, GRAPH.EXPLAIN, GRAPH.PROFILE, GRAPH.BULK,
// GRAPH.DELETE, GRAPH.LIST, GRAPH.SAVE, GRAPH.RESTORE, GRAPH.CONFIG,
// GRAPH.INFO, GRAPH.SLOWLOG, COMMAND, PING.
//
// Query texts may carry a RedisGraph-style parameter header:
//   "CYPHER name=1 handle='bob' MATCH (n {handle: $handle}) RETURN n"

#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/plan_cache.hpp"
#include "exec/result_set.hpp"
#include "graph/graph.hpp"
#include "graph/snapshot.hpp"
#include "persist/durability.hpp"
#include "server/command.hpp"
#include "server/replication.hpp"
#include "server/resp.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace rg::server {

/// Durability settings passed at construction (the module's load-time
/// configuration).  An empty data_dir disables the subsystem: the server
/// is then purely in-memory, exactly as before.
struct DurabilityConfig {
  std::string data_dir;
  persist::Options options;
};

/// One graph key's server-side state.  Commands hold it by shared_ptr
/// (see CommandCtx::entry()), so GRAPH.DELETE/RESTORE can unlink an
/// entry from the keyspace while stragglers finish safely — the entry
/// dies with its last user.
struct GraphEntry {
  explicit GraphEntry(std::size_t cache_capacity)
      : plan_cache(cache_capacity) {}
  util::SharedMutex lock;
  graph::Graph graph RG_GUARDED_BY(lock);
  exec::PlanCache plan_cache;
  /// LSN of the last journaled write applied to this graph (the
  /// snapshot watermark); written under the exclusive lock, read for
  /// snapshots under the shared lock.
  std::uint64_t last_lsn RG_GUARDED_BY(lock) = 0;
  /// MVCC epoch chain for this graph (see graph/snapshot.hpp).  Readers
  /// pin snapshots through Server::pin(); writers invalidate the
  /// published epoch before releasing their exclusive `lock`.
  graph::EpochManager epochs;
  /// Set (before the unlink frame is journaled) when GRAPH.DELETE or
  /// GRAPH.RESTORE removes this entry from the keyspace: a write
  /// still holding the entry only touched a zombie graph and must
  /// not journal (it would resurrect the key on replay).  Checked
  /// atomically with the append via DurabilityManager::append_if.
  std::atomic<bool> unlinked{false};
};

/// Dispatch-level metrics for one command (GRAPH.INFO commandstats).
/// `calls` counts every dispatch, including arity/flag rejections;
/// `errors` counts error replies of any kind.
struct CommandStats {
  std::uint64_t calls = 0;
  std::uint64_t errors = 0;
  std::uint64_t usec_total = 0;  // cumulative handler latency
  std::uint64_t usec_max = 0;    // worst single call
};

/// One slow-command record (GRAPH.SLOWLOG GET).
struct SlowlogEntry {
  std::uint64_t id = 0;       // monotonic, survives RESET like Redis
  std::int64_t unix_time = 0; // seconds since epoch at completion
  std::uint64_t usec = 0;     // handler latency
  std::string command;        // argv joined, long args/tails truncated
};

class Server {
 public:
  /// `worker_threads` = module THREAD_COUNT (fixed at load time).
  /// A non-empty `durability.data_dir` opens (or creates) the data
  /// directory, recovers snapshot + WAL state before the constructor
  /// returns, and journals every subsequent mutating command.
  explicit Server(std::size_t worker_threads = 4,
                  const DurabilityConfig& durability = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Asynchronous command submission (the client API): the dispatcher
  /// assigns the command to one worker; the future resolves when that
  /// worker finishes.  argv[0] is the command name.
  std::future<Reply> submit(std::vector<std::string> argv);

  /// Synchronous convenience: submit and wait.
  Reply execute(std::vector<std::string> argv);

  /// Parse a space-separated command line (quotes respected) and execute.
  Reply execute_line(const std::string& line);

  /// Direct access to a graph (benchmarks seed data through this without
  /// paying the Cypher write path).  Creates the graph if absent.
  graph::Graph& graph_for_testing(const std::string& key);

  std::size_t worker_count() const;

  /// Aggregate plan-cache counters across every graph in the keyspace
  /// (what GRAPH.CONFIG GET PLAN_CACHE_* reports).
  exec::PlanCache::Counters plan_cache_counters() const;

  /// True when a data dir was configured and recovery succeeded.
  bool durable() const { return durability_ != nullptr; }

  /// Durability counters (zeros when durability is off).
  persist::Counters durability_counters() const;

  /// Force a snapshot + WAL-truncating rewrite now; no-op when
  /// durability is off.  Blocks until the rewrite is committed.
  void force_snapshot();

  // -- replication (see server/replication.hpp) --------------------------

  enum class Role { kPrimary, kReplica };
  Role role() const { return role_.load(std::memory_order_acquire); }

  /// REPLICAOF <host> <port>: become a read-only replica of that
  /// primary.  Starts (or re-points) the background link; returns
  /// immediately — sync progress is visible in GRAPH.INFO replication.
  /// Re-pointing at the SAME primary carries the applied LSN forward, so
  /// the new link attempts a partial resync from the retained WAL.
  void replicaof(const std::string& host, std::uint16_t port);

  /// REPLICAOF NO ONE: stop the link and promote to primary.  A durable
  /// server stamps its next LSN above everything applied and snapshots,
  /// so the promoted state is the durable baseline.
  void replicaof_no_one();

  /// Role + link/ack snapshot (GRAPH.INFO replication and tests).
  ReplicationInfo replication_info() const;

  /// Record a replica's fetch heartbeat: fetching from_lsn acknowledges
  /// everything below it (REPL.FETCH handler; wakes WAIT).  Acks whose
  /// heartbeat is older than the staleness window are pruned here and
  /// ignored by WAIT / GRAPH.INFO: a replica that restarted (fresh
  /// random id) or went silent must not keep satisfying WAIT with the
  /// ack its dead incarnation left behind.
  void note_replica_ack(const std::string& replica_id,
                        std::uint64_t acked_lsn);

  /// Staleness window for replica acks, in ms (heartbeats arrive every
  /// few ms on an idle link, so the default is generous; tests shrink
  /// it for determinism).
  std::uint64_t replica_ack_stale_ms() const {
    return replica_ack_stale_ms_.load(std::memory_order_relaxed);
  }
  void set_replica_ack_stale_ms(std::uint64_t ms) {
    replica_ack_stale_ms_.store(ms, std::memory_order_relaxed);
  }
  static constexpr std::uint64_t kDefaultReplicaAckStaleMs = 10'000;

  /// WAIT: block until `numreplicas` replicas acked the WAL offset
  /// current at the call (timeout_ms 0 = no deadline, like Redis);
  /// returns how many had acked when it returned.
  std::size_t wait_for_replicas(std::size_t numreplicas,
                                std::uint64_t timeout_ms);

  /// Test/debug knob: freeze the replica link's fetch loop (lag becomes
  /// deterministic); no-op when not replicating.
  void set_replication_paused(bool paused);

  // -- MVCC observability (GRAPH.INFO mvcc) ------------------------------

  /// Keyspace-wide MVCC gauges: per-entry EpochManager counters summed
  /// with the live graphs' buffered delta totals.
  struct MvccInfo {
    std::uint64_t epochs_published = 0;  // snapshots ever forked
    std::uint64_t epochs_live = 0;       // snapshots still pinned/queued
    std::uint64_t pins_fast = 0;         // lock-free pin hits
    std::uint64_t pins_slow = 0;         // pins that forked a snapshot
    std::uint64_t invalidations = 0;     // writer commits observed
    std::uint64_t coalesce_runs = 0;     // background coalescer passes
    std::uint64_t delta_plus = 0;        // buffered matrix insertions
    std::uint64_t delta_minus = 0;       // buffered matrix deletions
  };
  MvccInfo mvcc_info() const;

  // -- command observability (GRAPH.INFO / GRAPH.SLOWLOG back ends) ------

  /// Snapshot of every registered command's dispatch metrics,
  /// name-sorted.  Commands never dispatched report zeros.
  std::vector<std::pair<const CommandSpec*, CommandStats>> command_stats()
      const;

  /// Newest-first slice of the slowlog (at most `count` entries;
  /// SIZE_MAX = all retained entries).
  std::vector<SlowlogEntry> slowlog_get(std::size_t count) const;
  std::size_t slowlog_len() const;
  void slowlog_reset();

  /// Commands whose handler latency reaches the threshold are logged;
  /// 0 logs everything, negative disables.  Runtime knob:
  /// GRAPH.CONFIG GET/SET SLOWLOG_THRESHOLD_US.
  std::int64_t slowlog_threshold_us() const {
    return slowlog_threshold_us_.load(std::memory_order_relaxed);
  }
  void set_slowlog_threshold_us(std::int64_t us) {
    slowlog_threshold_us_.store(us, std::memory_order_relaxed);
  }

  static constexpr std::size_t kSlowlogMaxLen = 128;
  static constexpr std::int64_t kDefaultSlowlogThresholdUs = 10000;

 private:
  friend class CommandCtx;
  friend struct CommandHandlers;
  friend class ReplicationClient;

  /// Registry lookup + arity/flag enforcement + metrics + slowlog.
  /// Every command — built-in or registered later — takes this path;
  /// there is deliberately no per-command branching here.  `source`
  /// selects the gate set: client dispatches face kInternal rejection,
  /// the replica read-only gate, journaling and the slowlog; WAL replay
  /// and replication apply are trusted re-application of already
  /// journaled frames and skip all four (re-journaling an applied frame
  /// would double it — see ci/lint_invariants.py rule replica-apply).
  Reply dispatch(const std::vector<std::string>& argv,
                 CommandSource source = CommandSource::kClient);

  /// Shared ownership: a command holds the returned pointer for its whole
  /// execution, so GRAPH.DELETE/RESTORE can unlink an entry from the
  /// keyspace while stragglers (including threads still blocked on
  /// entry->lock) finish safely — the entry dies with its last user.
  std::shared_ptr<GraphEntry> entry_for(const std::string& key);

  /// Fold a dying entry's cache counters into retired_counters_ so the
  /// CONFIG GET aggregate stays monotonic across GRAPH.DELETE/RESTORE.
  void retire_counters_locked(const GraphEntry& entry)
      RG_REQUIRES(keyspace_mu_);

  /// Unlink every graph from the keyspace (replica full sync starts
  /// clean; in-flight readers keep their entries alive via shared_ptr).
  void drop_all_graphs();

  // -- MVCC snapshot pinning (the kReadOnly path) ------------------------
  /// Pin the entry's current epoch snapshot.  Fast path: lock-free
  /// against writers (EpochManager::try_pin).  Slow path (a writer
  /// invalidated, or nothing published yet): takes the entry lock
  /// SHARED just long enough to fork O(delta), publishes the fork, and
  /// hands the new epoch to the background coalescer.  The returned
  /// snapshot stays valid after GRAPH.DELETE unlinks the key — the
  /// epoch retires when its last pin drops.
  std::shared_ptr<const graph::GraphSnapshot> pin(GraphEntry& ge);
  /// Queue a freshly published epoch for background coalescing.
  void enqueue_coalesce(std::weak_ptr<const graph::GraphSnapshot> snap);
  /// Defer a retired epoch's destruction to the coalescer thread.
  /// Writers call this with EpochManager::invalidate()'s return value
  /// while still holding their exclusive entry lock; tearing down the
  /// forked graph inline there (often the last reference once readers
  /// moved on) would stall every concurrent pin for the teardown.
  void retire_epoch(std::shared_ptr<const graph::GraphSnapshot> snap);
  void coalesce_loop();

  // -- metrics / slowlog -------------------------------------------------
  struct StatSlot {
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> usec_total{0};
    std::atomic<std::uint64_t> usec_max{0};
  };
  /// Slot for a registry index; commands registered after this server
  /// was constructed overflow into a lazily-grown side map.
  StatSlot& stat_slot(std::size_t index);
  const StatSlot* find_stat_slot(std::size_t index) const;
  void record_dispatch(StatSlot& slot, const std::vector<std::string>& argv,
                       bool error, std::uint64_t usec, CommandSource source);

  // -- durability --------------------------------------------------------
  /// Load snapshots + replay the WAL (constructor path, single-threaded).
  void recover();
  /// Snapshot every graph and truncate the WAL (compaction thread and
  /// force_snapshot; serialized by rewrite_mu_).
  void do_rewrite();
  /// Wake the compaction thread if the WAL has outgrown its threshold.
  void maybe_request_rewrite();
  void compaction_loop();

  mutable util::Mutex keyspace_mu_;
  std::map<std::string, std::shared_ptr<GraphEntry>> keyspace_
      RG_GUARDED_BY(keyspace_mu_);
  std::size_t plan_cache_capacity_ RG_GUARDED_BY(keyspace_mu_) =
      exec::PlanCache::kDefaultCapacity;
  exec::PlanCache::Counters retired_counters_ RG_GUARDED_BY(keyspace_mu_);

  // Fixed slots for every command registered at construction time;
  // later registrations (tests, embedders) go through extra_stats_.
  std::unique_ptr<StatSlot[]> stats_;
  std::size_t stats_size_ = 0;
  mutable util::Mutex extra_stats_mu_;
  std::map<std::size_t, std::unique_ptr<StatSlot>> extra_stats_
      RG_GUARDED_BY(extra_stats_mu_);

  mutable util::Mutex slowlog_mu_;
  std::deque<SlowlogEntry> slowlog_
      RG_GUARDED_BY(slowlog_mu_);  // front = newest
  std::uint64_t slowlog_next_id_ RG_GUARDED_BY(slowlog_mu_) = 0;
  std::atomic<std::int64_t> slowlog_threshold_us_{kDefaultSlowlogThresholdUs};

  // Declared before workers_ so the pool (whose queued commands may
  // still journal) is destroyed first on shutdown.
  std::unique_ptr<persist::DurabilityManager> durability_;
  util::Mutex rewrite_mu_;   // serializes rewrites (bg thread vs forced)
  util::Mutex compact_mu_;
  util::CondVar compact_cv_;
  bool compact_requested_ RG_GUARDED_BY(compact_mu_) = false;
  bool compact_stop_ RG_GUARDED_BY(compact_mu_) = false;
  std::thread compaction_thread_;

  // -- MVCC coalescer ----------------------------------------------------
  // Folds settled deltas on freshly published snapshots off the query
  // path (same shape as the compaction thread).  Runs regardless of
  // durability: epochs exist whenever readers pin.
  util::Mutex coalesce_mu_;
  util::CondVar coalesce_cv_;
  std::deque<std::weak_ptr<const graph::GraphSnapshot>> coalesce_q_
      RG_GUARDED_BY(coalesce_mu_);
  // Retired epochs awaiting teardown: the strong references here make
  // the coalescer thread the last holder, so forked graphs are never
  // destroyed on a query thread (let alone under an entry lock).
  std::deque<std::shared_ptr<const graph::GraphSnapshot>> retire_q_
      RG_GUARDED_BY(coalesce_mu_);
  bool coalesce_stop_ RG_GUARDED_BY(coalesce_mu_) = false;
  std::thread coalesce_thread_;

  // -- replication hub ---------------------------------------------------
  std::atomic<Role> role_{Role::kPrimary};
  mutable util::Mutex repl_mu_;
  util::CondVar repl_cv_;  // an ack advanced; WAIT waits here
  /// The replica-side link (null on a primary).  Stopped/joined OUTSIDE
  /// repl_mu_ — the link thread dispatches into the keyspace and must
  /// never be joined while a lock it could need is held.
  std::unique_ptr<ReplicationClient> repl_client_ RG_GUARDED_BY(repl_mu_);
  /// Primary-side ack bookkeeping, keyed by the replica's self-chosen
  /// id (stable across reconnects of one link).
  struct ReplicaAck {
    std::uint64_t acked_lsn = 0;
    std::chrono::steady_clock::time_point last_seen{};
  };
  std::map<std::string, ReplicaAck> replica_acks_ RG_GUARDED_BY(repl_mu_);
  std::atomic<std::uint64_t> replica_ack_stale_ms_{kDefaultReplicaAckStaleMs};
  bool ack_fresh_locked(const ReplicaAck& ack,
                        std::chrono::steady_clock::time_point now) const
      RG_REQUIRES(repl_mu_);

  std::unique_ptr<util::ThreadPool> workers_;
};

}  // namespace rg::server

// Redis-like in-process server substrate hosting the graph module.
//
// Mirrors the architecture the paper describes (Section II):
//  * a single **dispatcher** thread owns command intake (Redis's main
//    thread); commands arrive via submit() and are forwarded to
//  * a fixed **worker pool** whose size is set at construction (the
//    module's load-time THREAD_COUNT): each query executes entirely on
//    one worker thread — queries never parallelize across workers,
//  * per-graph reader/writer locks let read queries run concurrently
//    while writes serialize (RedisGraph's lock around the graph object).
//
// The network layer is replaced by an in-process command queue; see
// DESIGN.md for why this substitution preserves the paper's claims.
//
// Commands: GRAPH.QUERY, GRAPH.RO_QUERY, GRAPH.EXPLAIN, GRAPH.PROFILE,
// GRAPH.DELETE, GRAPH.LIST, GRAPH.SAVE, GRAPH.RESTORE, GRAPH.CONFIG, PING.
//
// Query texts may carry a RedisGraph-style parameter header:
//   "CYPHER name=1 handle='bob' MATCH (n {handle: $handle}) RETURN n"

#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "exec/result_set.hpp"
#include "graph/graph.hpp"
#include "server/resp.hpp"
#include "util/thread_pool.hpp"

namespace rg::server {

/// A command reply: either an error, a status string, a payload string
/// (EXPLAIN/PROFILE) or a full result set.
struct Reply {
  enum class Kind { kStatus, kError, kText, kResult };
  Kind kind = Kind::kStatus;
  std::string text;       // status / error / explain text
  exec::ResultSet result;

  bool ok() const { return kind != Kind::kError; }

  /// RESP wire encoding.
  std::string to_resp() const {
    switch (kind) {
      case Kind::kStatus: return resp_simple(text);
      case Kind::kError: return resp_error(text);
      case Kind::kText: return resp_bulk(text);
      case Kind::kResult: return encode_result_set(result);
    }
    return resp_error("internal");
  }
};

class Server {
 public:
  /// `worker_threads` = module THREAD_COUNT (fixed at load time).
  explicit Server(std::size_t worker_threads = 4);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Asynchronous command submission (the client API): the dispatcher
  /// assigns the command to one worker; the future resolves when that
  /// worker finishes.  argv[0] is the command name.
  std::future<Reply> submit(std::vector<std::string> argv);

  /// Synchronous convenience: submit and wait.
  Reply execute(std::vector<std::string> argv);

  /// Parse a space-separated command line (quotes respected) and execute.
  Reply execute_line(const std::string& line);

  /// Direct access to a graph (benchmarks seed data through this without
  /// paying the Cypher write path).  Creates the graph if absent.
  graph::Graph& graph_for_testing(const std::string& key);

  std::size_t worker_count() const;

 private:
  struct GraphEntry {
    graph::Graph graph;
    std::shared_mutex lock;
  };

  Reply dispatch(const std::vector<std::string>& argv);
  Reply cmd_query(const std::string& key, const std::string& text,
                  bool read_only_cmd, bool profile);
  Reply cmd_explain(const std::string& key, const std::string& text);
  Reply cmd_delete(const std::string& key);
  Reply cmd_list();
  Reply cmd_save(const std::string& key, const std::string& path);
  Reply cmd_restore(const std::string& key, const std::string& path);
  Reply cmd_config(const std::vector<std::string>& argv);

  GraphEntry& entry_for(const std::string& key);

  std::mutex keyspace_mu_;
  std::map<std::string, std::unique_ptr<GraphEntry>> keyspace_;
  std::unique_ptr<util::ThreadPool> workers_;
};

/// Split a command line into argv honoring single/double quotes.
std::vector<std::string> split_command_line(const std::string& line);

}  // namespace rg::server

// Redis-like server substrate hosting the graph module.
//
// Mirrors the architecture the paper describes (Section II):
//  * a single **dispatcher** thread owns command intake (Redis's main
//    thread); commands arrive via submit() and are forwarded to
//  * a fixed **worker pool** whose size is set at construction (the
//    module's load-time THREAD_COUNT): each query executes entirely on
//    one worker thread — queries never parallelize across workers,
//  * per-graph reader/writer locks let read queries run concurrently
//    while writes serialize (RedisGraph's lock around the graph object),
//  * per-graph **plan caches** (exec::PlanCache) give repeated queries
//    RedisGraph's cached-plan fast path: parameterized variants of one
//    query text skip lexer -> parser -> planner.
//
// This class is the in-process core: embedders (tests, benchmarks) call
// submit()/execute() directly.  The TCP RESP front-end that real socket
// clients (redis-cli, examples/resp_client) talk to lives in
// server/net_server.hpp and feeds this same dispatcher/worker model.
//
// Durability (optional, src/persist): with a configured data dir every
// mutating command is journaled to a CRC-framed write-ahead log after
// it commits and before its reply is released (the role Redis AOF plays
// for RedisGraph), background rewrites snapshot the keyspace in RGR1
// format and truncate the log, and construction replays snapshot + WAL
// so a crashed server comes back with every acknowledged write (modulo
// the chosen fsync policy).
//
// Commands: GRAPH.QUERY, GRAPH.RO_QUERY, GRAPH.EXPLAIN, GRAPH.PROFILE,
// GRAPH.BULK, GRAPH.DELETE, GRAPH.LIST, GRAPH.SAVE, GRAPH.RESTORE,
// GRAPH.CONFIG, PING.
//
// GRAPH.BULK is the batched ingestion fast path: N nodes/edges arrive in
// one frame, are validated up front, build GraphBLAS pending tuples
// directly (no per-entity Cypher compile), and journal as ONE WAL frame:
//
//   GRAPH.BULK <key> [NODES <count> [<label>]]...
//                    [EDGES <reltype> <count> <src> <dst> ...]...
//
// Query texts may carry a RedisGraph-style parameter header:
//   "CYPHER name=1 handle='bob' MATCH (n {handle: $handle}) RETURN n"

#pragma once

#include <atomic>
#include <condition_variable>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/plan_cache.hpp"
#include "exec/result_set.hpp"
#include "graph/graph.hpp"
#include "persist/durability.hpp"
#include "server/resp.hpp"
#include "util/thread_pool.hpp"

namespace rg::server {

/// A command reply: either an error, a status string, a payload string
/// (EXPLAIN/PROFILE) or a full result set.
struct Reply {
  enum class Kind { kStatus, kError, kText, kResult };
  Kind kind = Kind::kStatus;
  std::string text;       // status / error / explain text
  exec::ResultSet result;

  bool ok() const { return kind != Kind::kError; }

  /// RESP wire encoding.
  std::string to_resp() const {
    switch (kind) {
      case Kind::kStatus: return resp_simple(text);
      case Kind::kError: return resp_error(text);
      case Kind::kText: return resp_bulk(text);
      case Kind::kResult: return encode_result_set(result);
    }
    return resp_error("internal");
  }
};

/// Durability settings passed at construction (the module's load-time
/// configuration).  An empty data_dir disables the subsystem: the server
/// is then purely in-memory, exactly as before.
struct DurabilityConfig {
  std::string data_dir;
  persist::Options options;
};

class Server {
 public:
  /// `worker_threads` = module THREAD_COUNT (fixed at load time).
  /// A non-empty `durability.data_dir` opens (or creates) the data
  /// directory, recovers snapshot + WAL state before the constructor
  /// returns, and journals every subsequent mutating command.
  explicit Server(std::size_t worker_threads = 4,
                  const DurabilityConfig& durability = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Asynchronous command submission (the client API): the dispatcher
  /// assigns the command to one worker; the future resolves when that
  /// worker finishes.  argv[0] is the command name.
  std::future<Reply> submit(std::vector<std::string> argv);

  /// Synchronous convenience: submit and wait.
  Reply execute(std::vector<std::string> argv);

  /// Parse a space-separated command line (quotes respected) and execute.
  Reply execute_line(const std::string& line);

  /// Direct access to a graph (benchmarks seed data through this without
  /// paying the Cypher write path).  Creates the graph if absent.
  graph::Graph& graph_for_testing(const std::string& key);

  std::size_t worker_count() const;

  /// Aggregate plan-cache counters across every graph in the keyspace
  /// (what GRAPH.CONFIG GET PLAN_CACHE_* reports).
  exec::PlanCache::Counters plan_cache_counters() const;

  /// True when a data dir was configured and recovery succeeded.
  bool durable() const { return durability_ != nullptr; }

  /// Durability counters (zeros when durability is off).
  persist::Counters durability_counters() const;

  /// Force a snapshot + WAL-truncating rewrite now; no-op when
  /// durability is off.  Blocks until the rewrite is committed.
  void force_snapshot();

 private:
  struct GraphEntry {
    explicit GraphEntry(std::size_t cache_capacity)
        : plan_cache(cache_capacity) {}
    graph::Graph graph;
    std::shared_mutex lock;
    exec::PlanCache plan_cache;
    /// LSN of the last journaled write applied to this graph (the
    /// snapshot watermark); written under the exclusive lock, read for
    /// snapshots under the shared lock.
    std::uint64_t last_lsn = 0;
    /// Set (before the unlink frame is journaled) when GRAPH.DELETE or
    /// GRAPH.RESTORE removes this entry from the keyspace: a write
    /// still holding the entry only touched a zombie graph and must
    /// not journal (it would resurrect the key on replay).  Checked
    /// atomically with the append via DurabilityManager::append_if.
    std::atomic<bool> unlinked{false};
  };

  Reply dispatch(const std::vector<std::string>& argv);
  Reply cmd_query(const std::string& key, const std::string& raw,
                  bool read_only_cmd, bool profile);
  Reply cmd_bulk(const std::vector<std::string>& argv);
  Reply cmd_explain(const std::string& key, const std::string& text);
  Reply cmd_delete(const std::string& key);
  Reply cmd_list();
  Reply cmd_save(const std::string& key, const std::string& path);
  Reply cmd_restore(const std::string& key, const std::string& path);
  /// Replay-only: install a graph from serialized bytes carried by a
  /// GRAPH.RESTORE.PAYLOAD journal frame.
  Reply cmd_restore_payload(const std::string& key, const std::string& bytes);
  Reply cmd_config(const std::vector<std::string>& argv);

  /// Shared ownership: a command holds the returned pointer for its whole
  /// execution, so GRAPH.DELETE/RESTORE can unlink an entry from the
  /// keyspace while stragglers (including threads still blocked on
  /// entry->lock) finish safely — the entry dies with its last user.
  std::shared_ptr<GraphEntry> entry_for(const std::string& key);

  /// Fold a dying entry's cache counters into retired_counters_ so the
  /// CONFIG GET aggregate stays monotonic across GRAPH.DELETE/RESTORE.
  void retire_counters_locked(const GraphEntry& entry);

  // -- durability --------------------------------------------------------
  /// Load snapshots + replay the WAL (constructor path, single-threaded).
  void recover();
  /// Snapshot every graph and truncate the WAL (compaction thread and
  /// force_snapshot; serialized by rewrite_mu_).
  void do_rewrite();
  /// Wake the compaction thread if the WAL has outgrown its threshold.
  void maybe_request_rewrite();
  void compaction_loop();

  mutable std::mutex keyspace_mu_;
  std::map<std::string, std::shared_ptr<GraphEntry>> keyspace_;
  std::size_t plan_cache_capacity_ = exec::PlanCache::kDefaultCapacity;
  exec::PlanCache::Counters retired_counters_;

  // Declared before workers_ so the pool (whose queued commands may
  // still journal) is destroyed first on shutdown.
  std::unique_ptr<persist::DurabilityManager> durability_;
  bool replaying_ = false;  // constructor-only: suppress journaling
  std::mutex rewrite_mu_;   // serializes rewrites (bg thread vs forced)
  std::mutex compact_mu_;
  std::condition_variable compact_cv_;
  bool compact_requested_ = false;
  bool compact_stop_ = false;
  std::thread compaction_thread_;

  std::unique_ptr<util::ThreadPool> workers_;
};

}  // namespace rg::server

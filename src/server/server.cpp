#include "server/server.hpp"

#include "cypher/lexer.hpp"
#include "cypher/parser.hpp"
#include "exec/execution_plan.hpp"
#include "graph/serialize.hpp"

namespace rg::server {

namespace {

/// Read-only determination from the AST alone (no graph access, so it
/// can run before the lock is chosen).
bool ast_is_read_only(const cypher::Query& q) {
  using K = cypher::Clause::Kind;
  for (const auto& c : q.clauses) {
    if (c.kind == K::kCreate || c.kind == K::kDelete || c.kind == K::kSet ||
        c.kind == K::kCreateIndex)
      return false;
  }
  return true;
}

/// Strip a leading "CYPHER k=v k2=v2 ..." parameter header (RedisGraph's
/// parameterized-query syntax) and return the bindings.  Values are
/// literal tokens: integers, floats, strings, booleans, null.
std::pair<std::string, exec::ParamMap> split_cypher_params(
    const std::string& text) {
  const auto toks = cypher::tokenize(text);
  if (toks.empty() || toks[0].type != cypher::Tok::kIdent ||
      !cypher::keyword_eq(toks[0].text, "CYPHER"))
    return {text, {}};

  exec::ParamMap params;
  std::size_t i = 1;
  while (i + 2 < toks.size() && toks[i].type == cypher::Tok::kIdent &&
         toks[i + 1].type == cypher::Tok::kEq) {
    const std::string& name = toks[i].text;
    std::size_t vi = i + 2;
    bool negative = false;
    if (toks[vi].type == cypher::Tok::kDash) {
      negative = true;
      ++vi;
    }
    graph::Value v;
    const auto& vt = toks[vi];
    if (vt.type == cypher::Tok::kInteger) {
      v = graph::Value(static_cast<std::int64_t>(
          std::stoll(vt.text)) * (negative ? -1 : 1));
    } else if (vt.type == cypher::Tok::kFloat) {
      v = graph::Value(std::stod(vt.text) * (negative ? -1.0 : 1.0));
    } else if (vt.type == cypher::Tok::kString) {
      v = graph::Value(vt.text);
    } else if (vt.type == cypher::Tok::kIdent &&
               cypher::keyword_eq(vt.text, "TRUE")) {
      v = graph::Value(true);
    } else if (vt.type == cypher::Tok::kIdent &&
               cypher::keyword_eq(vt.text, "FALSE")) {
      v = graph::Value(false);
    } else if (vt.type == cypher::Tok::kIdent &&
               cypher::keyword_eq(vt.text, "NULL")) {
      v = graph::Value::null();
    } else {
      break;  // not a literal: header ends here
    }
    params[name] = std::move(v);
    i = vi + 1;
  }
  if (i >= toks.size() || toks[i].type == cypher::Tok::kEnd)
    return {text, {}};  // nothing after the header: treat as plain text
  //残り: the query body starts at toks[i].pos.
  return {text.substr(toks[i].pos), std::move(params)};
}

}  // namespace

Server::Server(std::size_t worker_threads)
    : workers_(std::make_unique<util::ThreadPool>(
          std::max<std::size_t>(1, worker_threads))) {}

Server::~Server() = default;

std::size_t Server::worker_count() const { return workers_->size(); }

Server::GraphEntry& Server::entry_for(const std::string& key) {
  std::lock_guard lk(keyspace_mu_);
  auto& slot = keyspace_[key];
  if (!slot) slot = std::make_unique<GraphEntry>();
  return *slot;
}

std::future<Reply> Server::submit(std::vector<std::string> argv) {
  // The dispatcher (caller thread, standing in for Redis's main thread)
  // enqueues; exactly one worker runs the command to completion.
  return workers_->submit(
      [this, argv = std::move(argv)]() { return dispatch(argv); });
}

Reply Server::execute(std::vector<std::string> argv) {
  return submit(std::move(argv)).get();
}

Reply Server::execute_line(const std::string& line) {
  return execute(split_command_line(line));
}

graph::Graph& Server::graph_for_testing(const std::string& key) {
  return entry_for(key).graph;
}

Reply Server::dispatch(const std::vector<std::string>& argv) {
  if (argv.empty()) return {Reply::Kind::kError, "empty command", {}};
  const std::string& cmd = argv[0];

  auto is = [&](std::string_view name) {
    return cypher::keyword_eq(cmd, name);
  };

  try {
    if (is("PING")) return {Reply::Kind::kStatus, "PONG", {}};
    if (is("GRAPH.QUERY") || is("GRAPH.RO_QUERY") || is("GRAPH.PROFILE")) {
      if (argv.size() < 3)
        return {Reply::Kind::kError, "wrong number of arguments", {}};
      return cmd_query(argv[1], argv[2], is("GRAPH.RO_QUERY"),
                       is("GRAPH.PROFILE"));
    }
    if (is("GRAPH.EXPLAIN")) {
      if (argv.size() < 3)
        return {Reply::Kind::kError, "wrong number of arguments", {}};
      return cmd_explain(argv[1], argv[2]);
    }
    if (is("GRAPH.DELETE")) {
      if (argv.size() < 2)
        return {Reply::Kind::kError, "wrong number of arguments", {}};
      return cmd_delete(argv[1]);
    }
    if (is("GRAPH.LIST")) return cmd_list();
    if (is("GRAPH.SAVE")) {
      if (argv.size() < 3)
        return {Reply::Kind::kError, "wrong number of arguments", {}};
      return cmd_save(argv[1], argv[2]);
    }
    if (is("GRAPH.RESTORE")) {
      if (argv.size() < 3)
        return {Reply::Kind::kError, "wrong number of arguments", {}};
      return cmd_restore(argv[1], argv[2]);
    }
    if (is("GRAPH.CONFIG")) return cmd_config(argv);
    return {Reply::Kind::kError, "unknown command '" + cmd + "'", {}};
  } catch (const std::exception& e) {
    return {Reply::Kind::kError, e.what(), {}};
  }
}

Reply Server::cmd_query(const std::string& key, const std::string& raw,
                        bool read_only_cmd, bool profile) {
  auto [text, params] = split_cypher_params(raw);
  const cypher::Query ast = cypher::parse(text);
  const bool ro = ast_is_read_only(ast);
  if (read_only_cmd && !ro)
    return {Reply::Kind::kError,
            "graph.RO_QUERY is to be executed only on read-only queries",
            {}};

  GraphEntry& ge = entry_for(key);
  Reply reply;
  if (ro) {
    std::shared_lock lk(ge.lock);
    exec::ExecutionPlan plan(ge.graph, ast, 64, params);
    if (profile) {
      reply.kind = Reply::Kind::kText;
      reply.text = plan.profile(reply.result);
    } else {
      reply.kind = Reply::Kind::kResult;
      plan.run(reply.result);
    }
  } else {
    std::unique_lock lk(ge.lock);
    exec::ExecutionPlan plan(ge.graph, ast, 64, params);
    if (profile) {
      reply.kind = Reply::Kind::kText;
      reply.text = plan.profile(reply.result);
    } else {
      reply.kind = Reply::Kind::kResult;
      plan.run(reply.result);
    }
  }
  return reply;
}

Reply Server::cmd_explain(const std::string& key, const std::string& text) {
  const cypher::Query ast = cypher::parse(text);
  GraphEntry& ge = entry_for(key);
  std::shared_lock lk(ge.lock);
  exec::ExecutionPlan plan(ge.graph, ast);
  return {Reply::Kind::kText, plan.explain(), {}};
}

Reply Server::cmd_delete(const std::string& key) {
  std::lock_guard lk(keyspace_mu_);
  const auto it = keyspace_.find(key);
  if (it == keyspace_.end())
    return {Reply::Kind::kError, "no such key '" + key + "'", {}};
  // Exclusive access before destruction.
  {
    std::unique_lock glk(it->second->lock);
  }
  keyspace_.erase(it);
  return {Reply::Kind::kStatus, "OK", {}};
}

Reply Server::cmd_list() {
  std::lock_guard lk(keyspace_mu_);
  Reply r;
  r.kind = Reply::Kind::kResult;
  r.result.columns = {"graph"};
  for (const auto& [key, entry] : keyspace_)
    r.result.rows.push_back({graph::Value(key)});
  return r;
}

Reply Server::cmd_save(const std::string& key, const std::string& path) {
  GraphEntry& ge = entry_for(key);
  std::shared_lock lk(ge.lock);
  graph::save_graph_file(ge.graph, path);
  return {Reply::Kind::kStatus, "OK", {}};
}

Reply Server::cmd_restore(const std::string& key, const std::string& path) {
  // Load into a fresh graph, then swap it in under the keyspace lock so
  // readers never observe a half-loaded graph.
  auto fresh = std::make_unique<GraphEntry>();
  graph::load_graph_file(fresh->graph, path);
  std::lock_guard lk(keyspace_mu_);
  auto& slot = keyspace_[key];
  if (slot) {
    std::unique_lock glk(slot->lock);  // drain in-flight users
  }
  slot = std::move(fresh);
  return {Reply::Kind::kStatus, "OK", {}};
}

Reply Server::cmd_config(const std::vector<std::string>& argv) {
  // GRAPH.CONFIG GET <name> | GRAPH.CONFIG SET <name> <value>.
  // THREAD_COUNT is fixed at module load time (paper, Section II): GET
  // reports it, SET is rejected.
  if (argv.size() >= 3 && cypher::keyword_eq(argv[1], "GET")) {
    if (cypher::keyword_eq(argv[2], "THREAD_COUNT")) {
      Reply r;
      r.kind = Reply::Kind::kResult;
      r.result.columns = {"name", "value"};
      r.result.rows.push_back(
          {graph::Value("THREAD_COUNT"),
           graph::Value(static_cast<std::int64_t>(worker_count()))});
      return r;
    }
    return {Reply::Kind::kError, "unknown config '" + argv[2] + "'", {}};
  }
  if (argv.size() >= 4 && cypher::keyword_eq(argv[1], "SET")) {
    if (cypher::keyword_eq(argv[2], "THREAD_COUNT"))
      return {Reply::Kind::kError,
              "THREAD_COUNT is fixed at module load time", {}};
    return {Reply::Kind::kError, "unknown config '" + argv[2] + "'", {}};
  }
  return {Reply::Kind::kError, "GRAPH.CONFIG GET|SET <name> [value]", {}};
}

std::vector<std::string> split_command_line(const std::string& line) {
  std::vector<std::string> argv;
  std::string cur;
  bool in_single = false, in_double = false, has_token = false;
  for (char c : line) {
    if (in_single) {
      if (c == '\'') in_single = false;
      else cur += c;
    } else if (in_double) {
      if (c == '"') in_double = false;
      else cur += c;
    } else if (c == '\'') {
      in_single = true;
      has_token = true;
    } else if (c == '"') {
      in_double = true;
      has_token = true;
    } else if (c == ' ' || c == '\t') {
      if (has_token || !cur.empty()) {
        argv.push_back(cur);
        cur.clear();
        has_token = false;
      }
    } else {
      cur += c;
      has_token = true;
    }
  }
  if (has_token || !cur.empty()) argv.push_back(cur);
  return argv;
}

}  // namespace rg::server

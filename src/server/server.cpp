#include "server/server.hpp"

#include <chrono>

#include "graph/serialize.hpp"

namespace rg::server {

Server::Server(std::size_t worker_threads, const DurabilityConfig& durability)
    : workers_(std::make_unique<util::ThreadPool>(
          std::max<std::size_t>(1, worker_threads))) {
  // Fixed metric slots for every command known now; commands registered
  // later (tests, embedders) overflow into extra_stats_.
  stats_size_ = CommandRegistry::instance().size();
  stats_ = std::make_unique<StatSlot[]>(stats_size_);
  // The MVCC coalescer runs regardless of durability: epoch snapshots
  // exist whenever readers pin, not only on durable servers.
  coalesce_thread_ = std::thread([this] { coalesce_loop(); });
  if (durability.data_dir.empty()) return;
  durability_ = std::make_unique<persist::DurabilityManager>(
      durability.data_dir, durability.options);
  recover();
  compaction_thread_ = std::thread([this] { compaction_loop(); });
}

Server::~Server() {
  // Stop the replication link first: its thread dispatches into the
  // keyspace and must be gone before any of that machinery tears down.
  {
    std::unique_ptr<ReplicationClient> link;
    {
      util::MutexLock lk(repl_mu_);
      link = std::move(repl_client_);
    }
    link.reset();  // joins outside repl_mu_
  }
  if (compaction_thread_.joinable()) {
    {
      util::MutexLock lk(compact_mu_);
      compact_stop_ = true;
    }
    compact_cv_.notify_all();
    compaction_thread_.join();
  }
  if (coalesce_thread_.joinable()) {
    {
      util::MutexLock lk(coalesce_mu_);
      coalesce_stop_ = true;
    }
    coalesce_cv_.notify_all();
    coalesce_thread_.join();
  }
}

void Server::recover() {
  // Constructor path: single-threaded, so dispatch() can be called
  // directly.  The locks below are all uncontended; they exist to
  // satisfy the guarded-by contracts (and to keep this path honest if
  // recovery ever goes concurrent).
  std::map<std::string, std::uint64_t> watermarks;
  std::size_t cache_capacity;
  {
    util::MutexLock lk(keyspace_mu_);
    cache_capacity = plan_cache_capacity_;
  }
  for (const auto& snap : durability_->snapshots()) {
    auto entry = std::make_shared<GraphEntry>(cache_capacity);
    graph::SnapshotMeta meta;
    {
      GraphEntry& e = *entry;
      // lint:allow(io-under-lock): fresh entry, not yet published
      util::WriteLock elk(e.lock);
      graph::load_graph_file(e.graph, durability_->path_of(snap.file),
                             &meta);
      e.graph.flush();
      e.last_lsn = snap.lsn;
    }
    watermarks[snap.key] = snap.lsn;
    util::MutexLock lk(keyspace_mu_);
    keyspace_[snap.key] = std::move(entry);
  }
  durability_->open_and_replay(
      [&](std::uint64_t lsn, const std::vector<std::string>& argv) {
        // Frames already folded into a snapshot (journaled between the
        // rewrite's log rotation and that graph's snapshot) are skipped
        // via the per-graph watermark.
        if (argv.size() >= 2) {
          const auto it = watermarks.find(argv[1]);
          if (it != watermarks.end() && lsn <= it->second) return false;
        }
        // Replay is best-effort per frame: a frame that fails (e.g.
        // GRAPH.DELETE of a key deleted twice) must not abort recovery.
        dispatch(argv, CommandSource::kReplay);
        return true;
      });
}

void Server::compaction_loop() {
  for (;;) {
    {
      util::MutexLock lk(compact_mu_);
      while (!compact_stop_ && !compact_requested_)
        compact_cv_.wait(compact_mu_);
      if (compact_stop_) return;
      compact_requested_ = false;
    }
    try {
      do_rewrite();
    } catch (const std::exception&) {
      // A failed rewrite (e.g. disk full) leaves the previous manifest
      // authoritative; appends continue and the next trigger retries.
    }
  }
}

// ---------------------------------------------------------------------------
// MVCC: snapshot pinning and the background coalescer
// ---------------------------------------------------------------------------

std::shared_ptr<const graph::GraphSnapshot> Server::pin(GraphEntry& ge) {
  // Fast path: a published epoch reflects every acknowledged write
  // (writers invalidate before releasing their exclusive lock), so the
  // pin is lock-free against both writers and other readers.
  if (auto snap = ge.epochs.try_pin()) return snap;
  // Slow path, single-flighted: one pinner forks the live graph under
  // the shared lock (held only for the O(delta) fork, never for the
  // query that follows); concurrent slow pinners wait for its publish
  // instead of piling redundant forks onto the entry lock.
  bool forked = false;
  auto snap = ge.epochs.pin_single_flight([&] {
    util::SharedLock lk(ge.lock);
    forked = true;
    return ge.epochs.pin_or_fork(ge.graph, ge.last_lsn);
  });
  if (forked) enqueue_coalesce(snap);
  return snap;
}

void Server::enqueue_coalesce(
    std::weak_ptr<const graph::GraphSnapshot> snap) {
  {
    util::MutexLock lk(coalesce_mu_);
    coalesce_q_.push_back(std::move(snap));
  }
  coalesce_cv_.notify_one();
}

void Server::retire_epoch(std::shared_ptr<const graph::GraphSnapshot> snap) {
  if (!snap) return;
  {
    util::MutexLock lk(coalesce_mu_);
    retire_q_.push_back(std::move(snap));
  }
  coalesce_cv_.notify_one();
}

void Server::coalesce_loop() {
  for (;;) {
    std::weak_ptr<const graph::GraphSnapshot> weak;
    std::shared_ptr<const graph::GraphSnapshot> dead;
    {
      util::MutexLock lk(coalesce_mu_);
      while (!coalesce_stop_ && coalesce_q_.empty() && retire_q_.empty())
        coalesce_cv_.wait(coalesce_mu_);
      if (coalesce_stop_) return;
      // Drain retirements first: tearing down dead epochs (this thread
      // holds their last reference) frees memory before folding work.
      if (!retire_q_.empty()) {
        dead = std::move(retire_q_.front());
        retire_q_.pop_front();
      } else {
        weak = std::move(coalesce_q_.front());
        coalesce_q_.pop_front();
      }
    }
    if (dead) {
      dead.reset();  // the forked graph's teardown, off the hot path
      continue;
    }
    // An epoch all readers already dropped retires instead of being
    // folded — coalescing it would be wasted work.
    if (const auto snap = weak.lock()) snap->coalesce();
  }
}

Server::MvccInfo Server::mvcc_info() const {
  std::vector<std::shared_ptr<GraphEntry>> entries;
  {
    util::MutexLock lk(keyspace_mu_);
    entries.reserve(keyspace_.size());
    for (const auto& [key, entry] : keyspace_) entries.push_back(entry);
  }
  MvccInfo info;
  for (const auto& e : entries) {
    const graph::MvccStats& s = e->epochs.stats();
    info.epochs_published += s.epochs_published.load();
    info.epochs_live += s.epochs_live.load();
    info.pins_fast += s.pins_fast.load();
    info.pins_slow += s.pins_slow.load();
    info.invalidations += s.invalidations.load();
    info.coalesce_runs += s.coalesce_runs.load();
    util::SharedLock lk(e->lock);
    const auto [plus, minus] = e->graph.delta_counts();
    info.delta_plus += plus;
    info.delta_minus += minus;
  }
  return info;
}

void Server::maybe_request_rewrite() {
  if (!durability_->compaction_due()) return;
  {
    util::MutexLock lk(compact_mu_);
    compact_requested_ = true;
  }
  compact_cv_.notify_one();
}

void Server::do_rewrite() {
  util::MutexLock rewrite_lk(rewrite_mu_);
  // 1. Rotate the journal; the transitional manifest keeps both logs.
  const std::uint64_t epoch = durability_->begin_rewrite();

  // 2. Snapshot every graph from a pinned MVCC epoch — no lock is held
  //    during the file write, so writers never queue behind snapshot
  //    I/O.  Writes continue: any write landing after the rotation is
  //    in the new log, and if it is also inside a snapshot its LSN is
  //    at or below that snapshot's watermark, so replay skips it (the
  //    pinned epoch's state and watermark advance in lock-step because
  //    writers invalidate before releasing the exclusive lock).
  std::vector<std::pair<std::string, std::shared_ptr<GraphEntry>>> items;
  {
    util::MutexLock lk(keyspace_mu_);
    items.assign(keyspace_.begin(), keyspace_.end());
  }
  std::vector<persist::DurabilityManager::SnapshotInfo> entries;
  entries.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const std::string file = durability_->snapshot_file(epoch, i);
    const auto snap = pin(*items[i].second);
    graph::save_graph_file(snap->graph(), durability_->path_of(file),
                           {epoch, snap->last_lsn()},
                           /*durable=*/true);
    entries.push_back({items[i].first, file, snap->last_lsn()});
  }

  // 3. Publish the new snapshot set and drop the old log.
  durability_->commit_rewrite(epoch, std::move(entries));
}

void Server::force_snapshot() {
  if (durability_) do_rewrite();
}

persist::Counters Server::durability_counters() const {
  return durability_ ? durability_->counters() : persist::Counters{};
}

std::size_t Server::worker_count() const { return workers_->size(); }

std::shared_ptr<GraphEntry> Server::entry_for(const std::string& key) {
  util::MutexLock lk(keyspace_mu_);
  auto& slot = keyspace_[key];
  if (!slot) slot = std::make_shared<GraphEntry>(plan_cache_capacity_);
  return slot;
}

exec::PlanCache::Counters Server::plan_cache_counters() const {
  util::MutexLock lk(keyspace_mu_);
  exec::PlanCache::Counters total = retired_counters_;
  for (const auto& [key, entry] : keyspace_) {
    const auto c = entry->plan_cache.counters();
    total.hits += c.hits;
    total.misses += c.misses;
    total.invalidations += c.invalidations;
  }
  return total;
}

void Server::retire_counters_locked(const GraphEntry& entry) {
  const auto c = entry.plan_cache.counters();
  retired_counters_.hits += c.hits;
  retired_counters_.misses += c.misses;
  // Every cached plan dies with the graph: count them as invalidations.
  retired_counters_.invalidations +=
      c.invalidations + entry.plan_cache.size();
}

std::future<Reply> Server::submit(std::vector<std::string> argv) {
  // The dispatcher (caller thread, standing in for Redis's main thread)
  // enqueues; exactly one worker runs the command to completion.
  return workers_->submit(
      [this, argv = std::move(argv)]() { return dispatch(argv); });
}

Reply Server::execute(std::vector<std::string> argv) {
  return submit(std::move(argv)).get();
}

Reply Server::execute_line(const std::string& line) {
  return execute(split_command_line(line));
}

// Test/bench backdoor: hands out an unlocked reference, so the analysis
// is off — callers own the single-threaded discipline.  The published
// epoch is invalidated up front: whatever the caller mutates through
// the bare reference must not be served from a stale snapshot later.
graph::Graph& Server::graph_for_testing(const std::string& key)
    RG_NO_THREAD_SAFETY_ANALYSIS {
  const auto entry = entry_for(key);
  retire_epoch(entry->epochs.invalidate());
  return entry->graph;
}

// ---------------------------------------------------------------------------
// Dispatch: the only path any command takes
// ---------------------------------------------------------------------------

Server::StatSlot& Server::stat_slot(std::size_t index) {
  if (index < stats_size_) return stats_[index];
  util::MutexLock lk(extra_stats_mu_);
  auto& slot = extra_stats_[index];
  if (!slot) slot = std::make_unique<StatSlot>();
  return *slot;
}

const Server::StatSlot* Server::find_stat_slot(std::size_t index) const {
  if (index < stats_size_) return &stats_[index];
  util::MutexLock lk(extra_stats_mu_);
  const auto it = extra_stats_.find(index);
  return it == extra_stats_.end() ? nullptr : it->second.get();
}

namespace {

/// Slowlog rendering of an argv: long arguments and long tails are
/// truncated so a multi-megabyte GRAPH.BULK never bloats the log.
std::string slowlog_command_text(const std::vector<std::string>& argv) {
  constexpr std::size_t kMaxArgs = 8;
  constexpr std::size_t kMaxArgLen = 64;
  std::string out;
  for (std::size_t i = 0; i < argv.size() && i < kMaxArgs; ++i) {
    if (i) out += ' ';
    if (argv[i].size() > kMaxArgLen)
      out += argv[i].substr(0, kMaxArgLen) + "...";
    else
      out += argv[i];
  }
  if (argv.size() > kMaxArgs)
    out += " ... (" + std::to_string(argv.size()) + " args)";
  return out;
}

}  // namespace

void Server::record_dispatch(StatSlot& slot,
                             const std::vector<std::string>& argv, bool error,
                             std::uint64_t usec, CommandSource source) {
  slot.calls.fetch_add(1, std::memory_order_relaxed);
  if (error) slot.errors.fetch_add(1, std::memory_order_relaxed);
  slot.usec_total.fetch_add(usec, std::memory_order_relaxed);
  std::uint64_t prev = slot.usec_max.load(std::memory_order_relaxed);
  while (prev < usec && !slot.usec_max.compare_exchange_weak(
                            prev, usec, std::memory_order_relaxed)) {
  }

  // Slowlog is client-facing observability: WAL replay and replication
  // apply are not client traffic.
  const std::int64_t threshold =
      slowlog_threshold_us_.load(std::memory_order_relaxed);
  if (source != CommandSource::kClient || threshold < 0 ||
      usec < static_cast<std::uint64_t>(threshold))
    return;
  const std::int64_t now =
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  util::MutexLock lk(slowlog_mu_);
  slowlog_.push_front(
      {slowlog_next_id_++, now, usec, slowlog_command_text(argv)});
  while (slowlog_.size() > kSlowlogMaxLen) slowlog_.pop_back();
}

Reply Server::dispatch(const std::vector<std::string>& argv,
                       CommandSource source) {
  if (argv.empty()) return {Reply::Kind::kError, "empty command", {}};
  const CommandSpec* spec = CommandRegistry::instance().find(argv[0]);
  if (!spec)
    return {Reply::Kind::kError, unknown_command_error(argv), {}};
  StatSlot& slot = stat_slot(spec->index);

  // Arity and flag enforcement from the table, not the handler: too few
  // arguments, trailing extras on fixed-arity commands, internal frame
  // types from clients, and client writes against a replica are all
  // rejected here.
  const auto argc = static_cast<int>(argv.size());
  if (argc < spec->min_arity ||
      (spec->max_arity >= 0 && argc > spec->max_arity)) {
    record_dispatch(slot, argv, /*error=*/true, 0, source);
    return {Reply::Kind::kError, wrong_arity_error(spec->name), {}};
  }
  if ((spec->flags & kInternal) && source == CommandSource::kClient) {
    record_dispatch(slot, argv, /*error=*/true, 0, source);
    return {Reply::Kind::kError,
            "'" + std::string(spec->name) +
                "' is an internal command, only valid during WAL replay",
            {}};
  }
  // The replica read-only gate (Redis semantics: only data mutations are
  // refused; admin and read commands still work).  Replication apply and
  // replay bypass it — applying the primary's stream IS the replica's
  // job.
  if ((spec->flags & kWrite) && source == CommandSource::kClient &&
      role() == Role::kReplica) {
    record_dispatch(slot, argv, /*error=*/true, 0, source);
    return {Reply::Kind::kError,
            "READONLY You can't write against a read only replica.",
            {}};
  }

  const auto start = std::chrono::steady_clock::now();
  Reply reply;
  std::shared_ptr<GraphEntry> mutated;
  try {
    CommandCtx ctx(*this, *spec, argv, source);
    reply = spec->handler(ctx);
    if ((spec->flags & kWrite) && !ctx.epochs_settled())
      mutated = ctx.resolved_entry();
  } catch (const std::exception& e) {
    reply = {Reply::Kind::kError, e.what(), {}};
  }
  // Epoch-invalidation net: built-in write handlers invalidate under
  // their exclusive lock (the ordering graph/snapshot.hpp requires);
  // this catches registry-added kWrite commands that mutate through
  // the escape-hatch locks without knowing about epochs.
  if (mutated) retire_epoch(mutated->epochs.invalidate());
  const auto usec = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  record_dispatch(slot, argv, !reply.ok(), usec, source);

  // Journaled writes may have pushed the WAL over its rewrite
  // threshold; the check is driven by the table's kWrite flag, exactly
  // like the journaling itself.
  if ((spec->flags & kWrite) && durability_ &&
      source == CommandSource::kClient)
    maybe_request_rewrite();
  return reply;
}

std::vector<std::pair<const CommandSpec*, CommandStats>>
Server::command_stats() const {
  std::vector<std::pair<const CommandSpec*, CommandStats>> out;
  for (const CommandSpec* spec : CommandRegistry::instance().all()) {
    CommandStats stats;
    if (const StatSlot* slot = find_stat_slot(spec->index)) {
      stats.calls = slot->calls.load(std::memory_order_relaxed);
      stats.errors = slot->errors.load(std::memory_order_relaxed);
      stats.usec_total = slot->usec_total.load(std::memory_order_relaxed);
      stats.usec_max = slot->usec_max.load(std::memory_order_relaxed);
    }
    out.emplace_back(spec, stats);
  }
  return out;
}

std::vector<SlowlogEntry> Server::slowlog_get(std::size_t count) const {
  util::MutexLock lk(slowlog_mu_);
  std::vector<SlowlogEntry> out;
  out.reserve(std::min(count, slowlog_.size()));
  for (const auto& e : slowlog_) {
    if (out.size() >= count) break;
    out.push_back(e);
  }
  return out;
}

std::size_t Server::slowlog_len() const {
  util::MutexLock lk(slowlog_mu_);
  return slowlog_.size();
}

void Server::slowlog_reset() {
  util::MutexLock lk(slowlog_mu_);
  slowlog_.clear();
}

// ---------------------------------------------------------------------------
// Replication hub (see server/replication.hpp for the link itself)
// ---------------------------------------------------------------------------

void Server::drop_all_graphs() {
  util::MutexLock lk(keyspace_mu_);
  for (auto& [key, entry] : keyspace_) {
    // Stragglers still holding the entry only touch a zombie graph and
    // (on a primary) would refuse to journal — same contract as DELETE.
    entry->unlinked.store(true, std::memory_order_release);
    retire_counters_locked(*entry);
  }
  keyspace_.clear();
}

void Server::replicaof(const std::string& host, std::uint16_t port) {
  std::unique_ptr<ReplicationClient> old;
  {
    util::MutexLock lk(repl_mu_);
    old = std::move(repl_client_);
  }
  // Stop (join) outside repl_mu_: the link thread dispatches commands
  // and must never be joined under a lock it could block on.
  std::uint64_t resume = 0;
  std::map<std::string, std::uint64_t> marks;
  std::string runid;
  if (old) {
    old->stop();
    if (old->host() == host && old->port() == port) {
      // Same primary: carry the position (and the run id it is valid
      // against) forward so the fresh link attempts a partial resync
      // instead of a full transfer.
      resume = old->applied_lsn();
      marks = old->watermarks();
      runid = old->primary_runid();
    }
    old.reset();
  }
  role_.store(Role::kReplica, std::memory_order_release);
  auto link = std::make_unique<ReplicationClient>(
      *this, host, port, resume, std::move(marks), std::move(runid));
  util::MutexLock lk(repl_mu_);
  repl_client_ = std::move(link);
}

void Server::replicaof_no_one() {
  std::unique_ptr<ReplicationClient> old;
  {
    util::MutexLock lk(repl_mu_);
    old = std::move(repl_client_);
  }
  std::uint64_t applied = 0;
  if (old) {
    old->stop();
    applied = old->applied_lsn();
    old.reset();
  }
  const Role prev = role_.exchange(Role::kPrimary, std::memory_order_acq_rel);
  if (prev == Role::kReplica && durability_) {
    // The replica never journaled what it applied (replica-apply
    // invariant), so promotion makes the applied state durable by
    // snapshot and stamps the next local write above everything from
    // the old primary.
    durability_->advance_next_lsn(applied + 1);
    force_snapshot();
  }
}

bool Server::ack_fresh_locked(
    const ReplicaAck& ack, std::chrono::steady_clock::time_point now) const {
  return now - ack.last_seen <=
         std::chrono::milliseconds(replica_ack_stale_ms());
}

ReplicationInfo Server::replication_info() const {
  ReplicationInfo info;
  info.is_replica = role() == Role::kReplica;
  if (durability_) {
    info.master_lsn = durability_->last_lsn();
    info.run_id = durability_->run_id();
  }
  const auto now = std::chrono::steady_clock::now();
  util::MutexLock lk(repl_mu_);
  if (repl_client_) repl_client_->fill_info(info);
  for (const auto& [id, ack] : replica_acks_) {
    if (!ack_fresh_locked(ack, now)) continue;  // silent link: not counted
    const auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
                         now - ack.last_seen)
                         .count();
    info.replicas.push_back(
        {id, ack.acked_lsn, age > 0 ? static_cast<std::uint64_t>(age) : 0});
  }
  return info;
}

void Server::note_replica_ack(const std::string& replica_id,
                              std::uint64_t acked_lsn) {
  {
    const auto now = std::chrono::steady_clock::now();
    util::MutexLock lk(repl_mu_);
    auto& ack = replica_acks_[replica_id];
    if (ack.acked_lsn < acked_lsn) ack.acked_lsn = acked_lsn;
    ack.last_seen = now;
    // Prune abandoned ids (a reconnecting/restarting replica mints a
    // fresh one each time) so the map stays bounded and a dead link's
    // last ack cannot satisfy WAIT forever.
    for (auto it = replica_acks_.begin(); it != replica_acks_.end();) {
      if (ack_fresh_locked(it->second, now))
        ++it;
      else
        it = replica_acks_.erase(it);
    }
  }
  repl_cv_.notify_all();
}

std::size_t Server::wait_for_replicas(std::size_t numreplicas,
                                      std::uint64_t timeout_ms) {
  // The offset to confirm is the WAL position at the moment WAIT was
  // issued — everything this client has written is at or below it.
  const std::uint64_t target = durability_ ? durability_->last_lsn() : 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  util::MutexLock lk(repl_mu_);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    std::size_t acked = 0;
    for (const auto& [id, ack] : replica_acks_)
      if (ack_fresh_locked(ack, now) && ack.acked_lsn >= target) ++acked;
    if (acked >= numreplicas) return acked;
    if (timeout_ms != 0 && std::chrono::steady_clock::now() >= deadline)
      return acked;
    // Bounded waits double as the deadline poll: a heartbeat wakes us
    // early, and a silent link cannot park WAIT forever past timeout.
    repl_cv_.wait_for(repl_mu_, std::chrono::milliseconds(50));
  }
}

void Server::set_replication_paused(bool paused) {
  util::MutexLock lk(repl_mu_);
  if (repl_client_) repl_client_->set_paused(paused);
}

}  // namespace rg::server

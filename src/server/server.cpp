#include "server/server.hpp"

#include <cstdlib>

#include "cypher/lexer.hpp"
#include "cypher/param_header.hpp"
#include "cypher/parser.hpp"
#include "exec/execution_plan.hpp"
#include "graph/serialize.hpp"

namespace rg::server {

Server::Server(std::size_t worker_threads)
    : workers_(std::make_unique<util::ThreadPool>(
          std::max<std::size_t>(1, worker_threads))) {}

Server::~Server() = default;

std::size_t Server::worker_count() const { return workers_->size(); }

std::shared_ptr<Server::GraphEntry> Server::entry_for(const std::string& key) {
  std::lock_guard lk(keyspace_mu_);
  auto& slot = keyspace_[key];
  if (!slot) slot = std::make_shared<GraphEntry>(plan_cache_capacity_);
  return slot;
}

exec::PlanCache::Counters Server::plan_cache_counters() const {
  std::lock_guard lk(keyspace_mu_);
  exec::PlanCache::Counters total = retired_counters_;
  for (const auto& [key, entry] : keyspace_) {
    const auto c = entry->plan_cache.counters();
    total.hits += c.hits;
    total.misses += c.misses;
    total.invalidations += c.invalidations;
  }
  return total;
}

void Server::retire_counters_locked(const GraphEntry& entry) {
  const auto c = entry.plan_cache.counters();
  retired_counters_.hits += c.hits;
  retired_counters_.misses += c.misses;
  // Every cached plan dies with the graph: count them as invalidations.
  retired_counters_.invalidations +=
      c.invalidations + entry.plan_cache.size();
}

std::future<Reply> Server::submit(std::vector<std::string> argv) {
  // The dispatcher (caller thread, standing in for Redis's main thread)
  // enqueues; exactly one worker runs the command to completion.
  return workers_->submit(
      [this, argv = std::move(argv)]() { return dispatch(argv); });
}

Reply Server::execute(std::vector<std::string> argv) {
  return submit(std::move(argv)).get();
}

Reply Server::execute_line(const std::string& line) {
  return execute(split_command_line(line));
}

graph::Graph& Server::graph_for_testing(const std::string& key) {
  return entry_for(key)->graph;
}

Reply Server::dispatch(const std::vector<std::string>& argv) {
  if (argv.empty()) return {Reply::Kind::kError, "empty command", {}};
  const std::string& cmd = argv[0];

  auto is = [&](std::string_view name) {
    return cypher::keyword_eq(cmd, name);
  };

  try {
    if (is("PING")) return {Reply::Kind::kStatus, "PONG", {}};
    if (is("GRAPH.QUERY") || is("GRAPH.RO_QUERY") || is("GRAPH.PROFILE")) {
      if (argv.size() < 3)
        return {Reply::Kind::kError, "wrong number of arguments", {}};
      return cmd_query(argv[1], argv[2], is("GRAPH.RO_QUERY"),
                       is("GRAPH.PROFILE"));
    }
    if (is("GRAPH.EXPLAIN")) {
      if (argv.size() < 3)
        return {Reply::Kind::kError, "wrong number of arguments", {}};
      return cmd_explain(argv[1], argv[2]);
    }
    if (is("GRAPH.DELETE")) {
      if (argv.size() < 2)
        return {Reply::Kind::kError, "wrong number of arguments", {}};
      return cmd_delete(argv[1]);
    }
    if (is("GRAPH.LIST")) return cmd_list();
    if (is("GRAPH.SAVE")) {
      if (argv.size() < 3)
        return {Reply::Kind::kError, "wrong number of arguments", {}};
      return cmd_save(argv[1], argv[2]);
    }
    if (is("GRAPH.RESTORE")) {
      if (argv.size() < 3)
        return {Reply::Kind::kError, "wrong number of arguments", {}};
      return cmd_restore(argv[1], argv[2]);
    }
    if (is("GRAPH.CONFIG")) return cmd_config(argv);
    return {Reply::Kind::kError, "unknown command '" + cmd + "'", {}};
  } catch (const std::exception& e) {
    return {Reply::Kind::kError, e.what(), {}};
  }
}

namespace {

/// GRAPH.PROFILE output: the per-op tree, prefixed with the compilation
/// cache outcome so the fast path is observable per query.
std::string profile_text(exec::PlanCache::Lease& lease, exec::ResultSet& out) {
  std::string s = lease.hit() ? "Plan cache: hit\n" : "Plan cache: miss\n";
  s += lease->profile(out);
  return s;
}

}  // namespace

Reply Server::cmd_query(const std::string& key, const std::string& raw,
                        bool read_only_cmd, bool profile) {
  const auto split = cypher::split_param_header(raw);
  // Shared ownership keeps the entry (and its lock) alive even if a
  // concurrent GRAPH.DELETE/RESTORE unlinks it from the keyspace while
  // we are blocked below.
  const auto ge = entry_for(key);

  // Fast path: shared lock + cached plan; read-only plans run in place,
  // concurrently with other readers.
  bool first_acquire_hit = false;
  {
    std::shared_lock lk(ge->lock);
    auto lease = ge->plan_cache.acquire(ge->graph, split.body, split.params);
    first_acquire_hit = lease.hit();
    if (lease->read_only()) {
      Reply reply;
      if (profile) {
        reply.kind = Reply::Kind::kText;
        reply.text = profile_text(lease, reply.result);
      } else {
        reply.kind = Reply::Kind::kResult;
        lease->run(reply.result);
      }
      return reply;
    }
    if (read_only_cmd)
      return {Reply::Kind::kError,
              "graph.RO_QUERY is to be executed only on read-only queries",
              {}};
  }

  // Write path: exclusive lock.  Re-acquire the plan — the schema may
  // have moved between dropping the shared lock and getting this one —
  // without counting again: this is still the same logical query.
  std::unique_lock lk(ge->lock);
  auto lease = ge->plan_cache.acquire(ge->graph, split.body, split.params,
                                      64, /*count_stats=*/false);
  lease.set_hit_for_reporting(first_acquire_hit);
  Reply reply;
  if (profile) {
    reply.kind = Reply::Kind::kText;
    reply.text = profile_text(lease, reply.result);
  } else {
    reply.kind = Reply::Kind::kResult;
    lease->run(reply.result);
  }
  // Re-sync matrices before the write lock drops so readers' flush() is
  // a read-only no-op (their shared lock cannot rebuild transposes).
  ge->graph.flush();
  return reply;
}

Reply Server::cmd_explain(const std::string& key, const std::string& raw) {
  const auto split = cypher::split_param_header(raw);
  const cypher::Query ast = cypher::parse(split.body);
  const auto ge = entry_for(key);
  std::shared_lock lk(ge->lock);
  exec::ExecutionPlan plan(ge->graph, ast);
  return {Reply::Kind::kText, plan.explain(), {}};
}

Reply Server::cmd_delete(const std::string& key) {
  std::lock_guard lk(keyspace_mu_);
  const auto it = keyspace_.find(key);
  if (it == keyspace_.end())
    return {Reply::Kind::kError, "no such key '" + key + "'", {}};
  retire_counters_locked(*it->second);
  // Unlink only: in-flight commands on this graph hold their own
  // shared_ptr, so the entry is destroyed by its last user, never under
  // a thread still using (or blocked on) its lock.
  keyspace_.erase(it);
  return {Reply::Kind::kStatus, "OK", {}};
}

Reply Server::cmd_list() {
  std::lock_guard lk(keyspace_mu_);
  Reply r;
  r.kind = Reply::Kind::kResult;
  r.result.columns = {"graph"};
  for (const auto& [key, entry] : keyspace_)
    r.result.rows.push_back({graph::Value(key)});
  return r;
}

Reply Server::cmd_save(const std::string& key, const std::string& path) {
  const auto ge = entry_for(key);
  std::shared_lock lk(ge->lock);
  graph::save_graph_file(ge->graph, path);
  return {Reply::Kind::kStatus, "OK", {}};
}

Reply Server::cmd_restore(const std::string& key, const std::string& path) {
  // Load into a fresh graph, then swap it in under the keyspace lock so
  // readers never observe a half-loaded graph.  The fresh entry's empty
  // plan cache also drops every plan compiled against the old graph.
  std::size_t capacity;
  {
    std::lock_guard lk(keyspace_mu_);
    capacity = plan_cache_capacity_;
  }
  auto fresh = std::make_shared<GraphEntry>(capacity);
  graph::load_graph_file(fresh->graph, path);
  fresh->graph.flush();  // readers must never be first to build transposes
  std::lock_guard lk(keyspace_mu_);
  auto& slot = keyspace_[key];
  if (slot) retire_counters_locked(*slot);
  // Swap in; the displaced entry (if any) dies with its last in-flight
  // user, exactly as in cmd_delete.
  slot = std::move(fresh);
  return {Reply::Kind::kStatus, "OK", {}};
}

Reply Server::cmd_config(const std::vector<std::string>& argv) {
  // GRAPH.CONFIG GET <name>|* | GRAPH.CONFIG SET <name> <value>.
  // THREAD_COUNT is fixed at module load time (paper, Section II): GET
  // reports it, SET is rejected.  PLAN_CACHE_* expose the query
  // compilation cache: capacity (settable) and hit/miss/invalidation
  // counters aggregated across the keyspace.
  auto row = [](exec::ResultSet& rs, const char* name, std::int64_t v) {
    rs.rows.push_back({graph::Value(name), graph::Value(v)});
  };
  if (argv.size() >= 3 && cypher::keyword_eq(argv[1], "GET")) {
    Reply r;
    r.kind = Reply::Kind::kResult;
    r.result.columns = {"name", "value"};
    const bool all = argv[2] == "*";
    const auto want = [&](std::string_view name) {
      return all || cypher::keyword_eq(argv[2], name);
    };
    if (want("THREAD_COUNT"))
      row(r.result, "THREAD_COUNT",
          static_cast<std::int64_t>(worker_count()));
    if (want("PLAN_CACHE_SIZE")) {
      std::lock_guard lk(keyspace_mu_);
      row(r.result, "PLAN_CACHE_SIZE",
          static_cast<std::int64_t>(plan_cache_capacity_));
    }
    if (want("PLAN_CACHE_HITS") || want("PLAN_CACHE_MISSES") ||
        want("PLAN_CACHE_INVALIDATIONS")) {
      const auto c = plan_cache_counters();
      if (want("PLAN_CACHE_HITS"))
        row(r.result, "PLAN_CACHE_HITS", static_cast<std::int64_t>(c.hits));
      if (want("PLAN_CACHE_MISSES"))
        row(r.result, "PLAN_CACHE_MISSES",
            static_cast<std::int64_t>(c.misses));
      if (want("PLAN_CACHE_INVALIDATIONS"))
        row(r.result, "PLAN_CACHE_INVALIDATIONS",
            static_cast<std::int64_t>(c.invalidations));
    }
    if (r.result.rows.empty())
      return {Reply::Kind::kError, "unknown config '" + argv[2] + "'", {}};
    return r;
  }
  if (argv.size() >= 4 && cypher::keyword_eq(argv[1], "SET")) {
    if (cypher::keyword_eq(argv[2], "THREAD_COUNT"))
      return {Reply::Kind::kError,
              "THREAD_COUNT is fixed at module load time", {}};
    if (cypher::keyword_eq(argv[2], "PLAN_CACHE_SIZE")) {
      char* end = nullptr;
      const long long v = std::strtoll(argv[3].c_str(), &end, 10);
      if (end == argv[3].c_str() || *end != '\0' || v < 1)
        return {Reply::Kind::kError,
                "PLAN_CACHE_SIZE must be a positive integer", {}};
      std::lock_guard lk(keyspace_mu_);
      plan_cache_capacity_ = static_cast<std::size_t>(v);
      for (auto& [key, entry] : keyspace_)
        entry->plan_cache.set_capacity(plan_cache_capacity_);
      return {Reply::Kind::kStatus, "OK", {}};
    }
    return {Reply::Kind::kError, "unknown config '" + argv[2] + "'", {}};
  }
  return {Reply::Kind::kError, "GRAPH.CONFIG GET|SET <name> [value]", {}};
}

}  // namespace rg::server

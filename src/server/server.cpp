#include "server/server.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "graphblas/context.hpp"

#include "cypher/lexer.hpp"
#include "cypher/param_header.hpp"
#include "cypher/parser.hpp"
#include "exec/execution_plan.hpp"
#include "graph/serialize.hpp"

namespace rg::server {

Server::Server(std::size_t worker_threads, const DurabilityConfig& durability)
    : workers_(std::make_unique<util::ThreadPool>(
          std::max<std::size_t>(1, worker_threads))) {
  if (durability.data_dir.empty()) return;
  durability_ = std::make_unique<persist::DurabilityManager>(
      durability.data_dir, durability.options);
  recover();
  compaction_thread_ = std::thread([this] { compaction_loop(); });
}

Server::~Server() {
  if (compaction_thread_.joinable()) {
    {
      std::lock_guard lk(compact_mu_);
      compact_stop_ = true;
    }
    compact_cv_.notify_all();
    compaction_thread_.join();
  }
}

void Server::recover() {
  // Constructor path: single-threaded, so dispatch() can be called
  // directly and replaying_ needs no synchronization.
  std::map<std::string, std::uint64_t> watermarks;
  for (const auto& snap : durability_->snapshots()) {
    auto entry = std::make_shared<GraphEntry>(plan_cache_capacity_);
    graph::SnapshotMeta meta;
    graph::load_graph_file(entry->graph, durability_->path_of(snap.file),
                           &meta);
    entry->graph.flush();
    entry->last_lsn = snap.lsn;
    watermarks[snap.key] = snap.lsn;
    keyspace_[snap.key] = std::move(entry);
  }
  replaying_ = true;
  durability_->open_and_replay(
      [&](std::uint64_t lsn, const std::vector<std::string>& argv) {
        // Frames already folded into a snapshot (journaled between the
        // rewrite's log rotation and that graph's snapshot) are skipped
        // via the per-graph watermark.
        if (argv.size() >= 2) {
          const auto it = watermarks.find(argv[1]);
          if (it != watermarks.end() && lsn <= it->second) return false;
        }
        // Replay is best-effort per frame: a frame that fails (e.g.
        // GRAPH.DELETE of a key deleted twice) must not abort recovery.
        dispatch(argv);
        return true;
      });
  replaying_ = false;
}

void Server::compaction_loop() {
  for (;;) {
    {
      std::unique_lock lk(compact_mu_);
      compact_cv_.wait(lk,
                       [this] { return compact_stop_ || compact_requested_; });
      if (compact_stop_) return;
      compact_requested_ = false;
    }
    try {
      do_rewrite();
    } catch (const std::exception&) {
      // A failed rewrite (e.g. disk full) leaves the previous manifest
      // authoritative; appends continue and the next trigger retries.
    }
  }
}

void Server::maybe_request_rewrite() {
  if (!durability_->compaction_due()) return;
  {
    std::lock_guard lk(compact_mu_);
    compact_requested_ = true;
  }
  compact_cv_.notify_one();
}

void Server::do_rewrite() {
  std::lock_guard rewrite_lk(rewrite_mu_);
  // 1. Rotate the journal; the transitional manifest keeps both logs.
  const std::uint64_t epoch = durability_->begin_rewrite();

  // 2. Snapshot every graph under its read lock.  Writes continue: any
  //    write landing after the rotation is in the new log, and if it is
  //    also inside a snapshot its LSN is at or below that snapshot's
  //    watermark, so replay skips it.
  std::vector<std::pair<std::string, std::shared_ptr<GraphEntry>>> items;
  {
    std::lock_guard lk(keyspace_mu_);
    items.assign(keyspace_.begin(), keyspace_.end());
  }
  std::vector<persist::DurabilityManager::SnapshotInfo> entries;
  entries.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const std::string file = durability_->snapshot_file(epoch, i);
    std::shared_lock lk(items[i].second->lock);
    graph::save_graph_file(items[i].second->graph, durability_->path_of(file),
                           {epoch, items[i].second->last_lsn},
                           /*durable=*/true);
    entries.push_back({items[i].first, file, items[i].second->last_lsn});
  }

  // 3. Publish the new snapshot set and drop the old log.
  durability_->commit_rewrite(epoch, std::move(entries));
}

void Server::force_snapshot() {
  if (durability_) do_rewrite();
}

persist::Counters Server::durability_counters() const {
  return durability_ ? durability_->counters() : persist::Counters{};
}

std::size_t Server::worker_count() const { return workers_->size(); }

std::shared_ptr<Server::GraphEntry> Server::entry_for(const std::string& key) {
  std::lock_guard lk(keyspace_mu_);
  auto& slot = keyspace_[key];
  if (!slot) slot = std::make_shared<GraphEntry>(plan_cache_capacity_);
  return slot;
}

exec::PlanCache::Counters Server::plan_cache_counters() const {
  std::lock_guard lk(keyspace_mu_);
  exec::PlanCache::Counters total = retired_counters_;
  for (const auto& [key, entry] : keyspace_) {
    const auto c = entry->plan_cache.counters();
    total.hits += c.hits;
    total.misses += c.misses;
    total.invalidations += c.invalidations;
  }
  return total;
}

void Server::retire_counters_locked(const GraphEntry& entry) {
  const auto c = entry.plan_cache.counters();
  retired_counters_.hits += c.hits;
  retired_counters_.misses += c.misses;
  // Every cached plan dies with the graph: count them as invalidations.
  retired_counters_.invalidations +=
      c.invalidations + entry.plan_cache.size();
}

std::future<Reply> Server::submit(std::vector<std::string> argv) {
  // The dispatcher (caller thread, standing in for Redis's main thread)
  // enqueues; exactly one worker runs the command to completion.
  return workers_->submit(
      [this, argv = std::move(argv)]() { return dispatch(argv); });
}

Reply Server::execute(std::vector<std::string> argv) {
  return submit(std::move(argv)).get();
}

Reply Server::execute_line(const std::string& line) {
  return execute(split_command_line(line));
}

graph::Graph& Server::graph_for_testing(const std::string& key) {
  return entry_for(key)->graph;
}

Reply Server::dispatch(const std::vector<std::string>& argv) {
  if (argv.empty()) return {Reply::Kind::kError, "empty command", {}};
  const std::string& cmd = argv[0];

  auto is = [&](std::string_view name) {
    return cypher::keyword_eq(cmd, name);
  };

  try {
    if (is("PING")) return {Reply::Kind::kStatus, "PONG", {}};
    if (is("GRAPH.QUERY") || is("GRAPH.RO_QUERY") || is("GRAPH.PROFILE")) {
      if (argv.size() < 3)
        return {Reply::Kind::kError, "wrong number of arguments", {}};
      return cmd_query(argv[1], argv[2], is("GRAPH.RO_QUERY"),
                       is("GRAPH.PROFILE"));
    }
    if (is("GRAPH.EXPLAIN")) {
      if (argv.size() < 3)
        return {Reply::Kind::kError, "wrong number of arguments", {}};
      return cmd_explain(argv[1], argv[2]);
    }
    if (is("GRAPH.BULK")) {
      if (argv.size() < 4)
        return {Reply::Kind::kError, "wrong number of arguments", {}};
      return cmd_bulk(argv);
    }
    if (is("GRAPH.DELETE")) {
      if (argv.size() < 2)
        return {Reply::Kind::kError, "wrong number of arguments", {}};
      return cmd_delete(argv[1]);
    }
    if (is("GRAPH.LIST")) return cmd_list();
    if (is("GRAPH.SAVE")) {
      if (argv.size() < 3)
        return {Reply::Kind::kError, "wrong number of arguments", {}};
      return cmd_save(argv[1], argv[2]);
    }
    if (is("GRAPH.RESTORE")) {
      if (argv.size() < 3)
        return {Reply::Kind::kError, "wrong number of arguments", {}};
      return cmd_restore(argv[1], argv[2]);
    }
    if (is("GRAPH.RESTORE.PAYLOAD")) {
      // Internal frame type emitted by durable GRAPH.RESTORE; only the
      // recovery replay may dispatch it.
      if (!replaying_)
        return {Reply::Kind::kError,
                "GRAPH.RESTORE.PAYLOAD is internal to WAL replay", {}};
      if (argv.size() < 3)
        return {Reply::Kind::kError, "wrong number of arguments", {}};
      return cmd_restore_payload(argv[1], argv[2]);
    }
    if (is("GRAPH.CONFIG")) return cmd_config(argv);
    return {Reply::Kind::kError, "unknown command '" + cmd + "'", {}};
  } catch (const std::exception& e) {
    return {Reply::Kind::kError, e.what(), {}};
  }
}

namespace {

/// GRAPH.PROFILE output: the per-op tree, prefixed with the compilation
/// cache outcome so the fast path is observable per query.
std::string profile_text(exec::PlanCache::Lease& lease, exec::ResultSet& out) {
  std::string s = lease.hit() ? "Plan cache: hit\n" : "Plan cache: miss\n";
  s += lease->profile(out);
  return s;
}

}  // namespace

Reply Server::cmd_query(const std::string& key, const std::string& raw,
                        bool read_only_cmd, bool profile) {
  const auto split = cypher::split_param_header(raw);
  // Shared ownership keeps the entry (and its lock) alive even if a
  // concurrent GRAPH.DELETE/RESTORE unlinks it from the keyspace while
  // we are blocked below.
  const auto ge = entry_for(key);

  // Fast path: shared lock + cached plan; read-only plans run in place,
  // concurrently with other readers.
  bool first_acquire_hit = false;
  {
    std::shared_lock lk(ge->lock);
    auto lease = ge->plan_cache.acquire(ge->graph, split.body, split.params);
    first_acquire_hit = lease.hit();
    if (lease->read_only()) {
      Reply reply;
      if (profile) {
        reply.kind = Reply::Kind::kText;
        reply.text = profile_text(lease, reply.result);
      } else {
        reply.kind = Reply::Kind::kResult;
        lease->run(reply.result);
      }
      return reply;
    }
    if (read_only_cmd)
      return {Reply::Kind::kError,
              "graph.RO_QUERY is to be executed only on read-only queries",
              {}};
  }

  // Write path: exclusive lock.  Re-acquire the plan — the schema may
  // have moved between dropping the shared lock and getting this one —
  // without counting again: this is still the same logical query.
  Reply reply;
  {
    std::unique_lock lk(ge->lock);
    auto lease = ge->plan_cache.acquire(ge->graph, split.body, split.params,
                                        64, /*count_stats=*/false);
    lease.set_hit_for_reporting(first_acquire_hit);
    if (profile) {
      reply.kind = Reply::Kind::kText;
      reply.text = profile_text(lease, reply.result);
    } else {
      reply.kind = Reply::Kind::kResult;
      lease->run(reply.result);
    }
    // Re-sync matrices before the write lock drops so readers' flush() is
    // a read-only no-op (their shared lock cannot rebuild transposes).
    ge->graph.flush();
    // Journal after commit, before the reply is released.  Still under
    // the exclusive lock so last_lsn (the snapshot watermark) moves in
    // lock-step with the graph state a concurrent snapshot would see.
    // The guard skips the frame if a concurrent GRAPH.DELETE/RESTORE
    // already unlinked this entry — the write only touched a zombie
    // graph, and journaling it would resurrect the key on replay.
    // (append_if, not a bare check: the guard runs under the append
    // mutex, so it orders atomically against the unlink frame.)
    if (durability_ && !replaying_) {
      const std::uint64_t lsn = durability_->append_if(
          {"GRAPH.QUERY", key, raw}, [&] {
            return !ge->unlinked.load(std::memory_order_acquire);
          });
      if (lsn != 0) ge->last_lsn = lsn;
    }
  }
  if (durability_ && !replaying_) maybe_request_rewrite();
  return reply;
}

namespace {

/// Strict decimal u64 parse for GRAPH.BULK operands.
bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size() || s[0] == '-') return false;
  out = v;
  return true;
}

}  // namespace

Reply Server::cmd_bulk(const std::vector<std::string>& argv) {
  const std::string& key = argv[1];

  // ---- parse (no graph state touched yet) -------------------------------
  struct NodeBatch {
    std::uint64_t count = 0;
    std::string label;  // empty = unlabeled
  };
  // An edge endpoint is either an absolute node id or a batch-relative
  // reference "@k" = the k-th node created by THIS command (counting
  // across its NODES sections).  References make a combined nodes+edges
  // batch self-contained: the client needs no id round-trip and the
  // command stays atomic even when the id allocator reuses freed slots.
  struct Endpoint {
    bool ref = false;
    std::uint64_t v = 0;
  };
  struct EdgeBatch {
    std::string type;
    std::vector<std::pair<Endpoint, Endpoint>> edges;
  };
  std::vector<NodeBatch> node_batches;
  std::vector<EdgeBatch> edge_batches;

  auto is_section = [](const std::string& s) {
    return cypher::keyword_eq(s, "NODES") || cypher::keyword_eq(s, "EDGES");
  };

  std::size_t i = 2;
  while (i < argv.size()) {
    if (cypher::keyword_eq(argv[i], "NODES")) {
      NodeBatch nb;
      if (i + 1 >= argv.size() || !parse_u64(argv[i + 1], nb.count))
        return {Reply::Kind::kError, "GRAPH.BULK: NODES needs a count", {}};
      i += 2;
      if (i < argv.size() && !is_section(argv[i])) nb.label = argv[i++];
      node_batches.push_back(std::move(nb));
    } else if (cypher::keyword_eq(argv[i], "EDGES")) {
      if (i + 2 >= argv.size())
        return {Reply::Kind::kError,
                "GRAPH.BULK: EDGES needs <reltype> <count>", {}};
      EdgeBatch eb;
      eb.type = argv[i + 1];
      std::uint64_t count = 0;
      if (!parse_u64(argv[i + 2], count) || eb.type.empty() ||
          is_section(eb.type))
        return {Reply::Kind::kError,
                "GRAPH.BULK: EDGES needs <reltype> <count>", {}};
      i += 3;
      if (argv.size() - i < 2 * count)
        return {Reply::Kind::kError,
                "GRAPH.BULK: EDGES declares more endpoints than supplied", {}};
      eb.edges.reserve(count);
      auto parse_endpoint = [](const std::string& s, Endpoint& out) {
        out.ref = !s.empty() && s[0] == '@';
        return parse_u64(out.ref ? s.substr(1) : s, out.v);
      };
      for (std::uint64_t e = 0; e < count; ++e) {
        Endpoint src, dst;
        if (!parse_endpoint(argv[i], src) || !parse_endpoint(argv[i + 1], dst))
          return {Reply::Kind::kError,
                  "GRAPH.BULK: edge endpoints must be node ids or @refs", {}};
        eb.edges.emplace_back(src, dst);
        i += 2;
      }
      edge_batches.push_back(std::move(eb));
    } else {
      return {Reply::Kind::kError,
              "GRAPH.BULK: expected NODES or EDGES, got '" + argv[i] + "'",
              {}};
    }
  }
  if (node_batches.empty() && edge_batches.empty())
    return {Reply::Kind::kError, "GRAPH.BULK: empty batch", {}};

  // ---- apply under the exclusive per-graph lock -------------------------
  const auto ge = entry_for(key);
  std::uint64_t nodes_created = 0;
  std::uint64_t edges_created = 0;
  std::int64_t first_node_id = -1;
  {
    std::unique_lock lk(ge->lock);
    graph::Graph& g = ge->graph;

    // Nodes first, so edges may reference ids created in this batch.
    // On any failure everything created here — edges, then nodes — is
    // rolled back: the command is all-or-nothing, which keeps the single
    // replayed WAL frame an exact description of what happened.
    std::vector<graph::NodeId> created;
    std::vector<graph::EdgeId> created_edges;
    auto rollback = [&] {
      for (auto it = created_edges.rbegin(); it != created_edges.rend(); ++it)
        if (g.has_edge(*it)) g.delete_edge(*it);
      for (auto it = created.rbegin(); it != created.rend(); ++it)
        g.delete_node(*it);
    };
    try {
      for (const auto& nb : node_batches) {
        std::vector<graph::LabelId> labels;
        if (!nb.label.empty())
          labels.push_back(g.schema().add_label(nb.label));
        for (std::uint64_t c = 0; c < nb.count; ++c) {
          const graph::NodeId id = g.add_node(labels);
          if (first_node_id < 0) first_node_id = static_cast<std::int64_t>(id);
          created.push_back(id);
        }
      }
      nodes_created = created.size();
    } catch (const std::exception& e) {
      rollback();
      return {Reply::Kind::kError, e.what(), {}};
    }

    auto resolve = [&](const Endpoint& ep, graph::NodeId& out) {
      if (ep.ref) {
        if (ep.v >= created.size()) return false;
        out = created[ep.v];
        return true;
      }
      out = ep.v;
      return g.has_node(out);
    };
    for (const auto& eb : edge_batches) {
      for (const auto& [src, dst] : eb.edges) {
        graph::NodeId s = 0, d = 0;
        const bool s_ok = resolve(src, s);
        if (!s_ok || !resolve(dst, d)) {
          const Endpoint& bad = s_ok ? dst : src;
          rollback();
          return {Reply::Kind::kError,
                  "GRAPH.BULK: edge endpoint " +
                      std::string(bad.ref ? "@" : "") + std::to_string(bad.v) +
                      " does not exist", {}};
        }
      }
    }
    // The apply loop can still throw (GraphFullError at the edge-id
    // cap): without the rollback the batch would be half-applied in
    // memory while the WAL never records it — a durable server would
    // silently lose the partial batch on restart.
    try {
      for (const auto& eb : edge_batches) {
        const graph::RelTypeId t = g.schema().add_reltype(eb.type);
        for (const auto& [src, dst] : eb.edges) {
          graph::NodeId s = 0, d = 0;
          resolve(src, s);
          resolve(dst, d);
          created_edges.push_back(g.add_edge(t, s, d));
          ++edges_created;
        }
      }
    } catch (const std::exception& e) {
      rollback();
      return {Reply::Kind::kError, e.what(), {}};
    }

    // Matrices re-sync before the write lock drops (same as cmd_query).
    g.flush();

    // One WAL frame for the whole batch — this is the durability half of
    // the amortization: N entities cost one append + one fsync.
    if (durability_ && !replaying_) {
      const std::uint64_t lsn = durability_->append_batch_if(
          argv, nodes_created + edges_created, [&] {
            return !ge->unlinked.load(std::memory_order_acquire);
          });
      if (lsn != 0) ge->last_lsn = lsn;
    }
  }
  if (durability_ && !replaying_) maybe_request_rewrite();

  Reply r;
  r.kind = Reply::Kind::kResult;
  r.result.columns = {"nodes_created", "edges_created", "first_node_id"};
  r.result.rows.push_back(
      {graph::Value(static_cast<std::int64_t>(nodes_created)),
       graph::Value(static_cast<std::int64_t>(edges_created)),
       graph::Value(first_node_id)});
  return r;
}

Reply Server::cmd_explain(const std::string& key, const std::string& raw) {
  const auto split = cypher::split_param_header(raw);
  const cypher::Query ast = cypher::parse(split.body);
  const auto ge = entry_for(key);
  std::shared_lock lk(ge->lock);
  exec::ExecutionPlan plan(ge->graph, ast);
  return {Reply::Kind::kText, plan.explain(), {}};
}

Reply Server::cmd_delete(const std::string& key) {
  {
    std::lock_guard lk(keyspace_mu_);
    const auto it = keyspace_.find(key);
    if (it == keyspace_.end())
      return {Reply::Kind::kError, "no such key '" + key + "'", {}};
    retire_counters_locked(*it->second);
    // Unlink only: in-flight commands on this graph hold their own
    // shared_ptr, so the entry is destroyed by its last user, never under
    // a thread still using (or blocked on) its lock.
    it->second->unlinked.store(true, std::memory_order_release);
    keyspace_.erase(it);
    // Journal while still holding keyspace_mu_ (deletes are rare): the
    // DELETE frame must precede any frame from a writer that re-creates
    // the key, and entry_for can only hand out a fresh entry after this
    // lock drops.  Stale writers on the old entry are fenced off by the
    // unlinked flag just set.
    if (durability_ && !replaying_)
      durability_->append({"GRAPH.DELETE", key});
  }
  if (durability_ && !replaying_) maybe_request_rewrite();
  return {Reply::Kind::kStatus, "OK", {}};
}

Reply Server::cmd_list() {
  std::lock_guard lk(keyspace_mu_);
  Reply r;
  r.kind = Reply::Kind::kResult;
  r.result.columns = {"graph"};
  for (const auto& [key, entry] : keyspace_)
    r.result.rows.push_back({graph::Value(key)});
  return r;
}

Reply Server::cmd_save(const std::string& key, const std::string& path) {
  const auto ge = entry_for(key);
  std::shared_lock lk(ge->lock);
  graph::save_graph_file(ge->graph, path);
  return {Reply::Kind::kStatus, "OK", {}};
}

Reply Server::cmd_restore(const std::string& key, const std::string& path) {
  // Load into a fresh graph, then swap it in under the keyspace lock so
  // readers never observe a half-loaded graph.  The fresh entry's empty
  // plan cache also drops every plan compiled against the old graph.
  std::size_t capacity;
  {
    std::lock_guard lk(keyspace_mu_);
    capacity = plan_cache_capacity_;
  }
  auto fresh = std::make_shared<GraphEntry>(capacity);
  graph::load_graph_file(fresh->graph, path);
  fresh->graph.flush();  // readers must never be first to build transposes
  // Durable restore journals the restored graph ITSELF (the external
  // file may be gone by replay time) — the same trick Redis AOF uses
  // for RESTORE: the frame carries the serialized value.  Serialized
  // outside the keyspace lock; the swap + journal below are atomic.
  std::string payload;
  if (durability_ && !replaying_) {
    std::ostringstream os(std::ios::binary);
    graph::save_graph(fresh->graph, os);
    payload = std::move(os).str();
  }
  {
    std::lock_guard lk(keyspace_mu_);
    auto& slot = keyspace_[key];
    if (slot) {
      retire_counters_locked(*slot);
      // Fence off stale writers still holding the displaced entry
      // (same protocol as cmd_delete).
      slot->unlinked.store(true, std::memory_order_release);
    }
    if (durability_ && !replaying_)
      fresh->last_lsn =
          durability_->append({"GRAPH.RESTORE.PAYLOAD", key, payload});
    // Swap in; the displaced entry (if any) dies with its last in-flight
    // user, exactly as in cmd_delete.
    slot = std::move(fresh);
  }
  // A multi-megabyte payload frame can push the log over its threshold.
  if (durability_ && !replaying_) maybe_request_rewrite();
  return {Reply::Kind::kStatus, "OK", {}};
}

Reply Server::cmd_restore_payload(const std::string& key,
                                  const std::string& bytes) {
  // Replay-only twin of cmd_restore: the graph arrives as serialized
  // bytes inside the WAL frame instead of a file path.
  std::size_t capacity;
  {
    std::lock_guard lk(keyspace_mu_);
    capacity = plan_cache_capacity_;
  }
  auto fresh = std::make_shared<GraphEntry>(capacity);
  std::istringstream in(bytes, std::ios::binary);
  graph::load_graph(fresh->graph, in);
  fresh->graph.flush();
  std::lock_guard lk(keyspace_mu_);
  auto& slot = keyspace_[key];
  if (slot) retire_counters_locked(*slot);
  slot = std::move(fresh);
  return {Reply::Kind::kStatus, "OK", {}};
}

Reply Server::cmd_config(const std::vector<std::string>& argv) {
  // GRAPH.CONFIG GET <name>|* | GRAPH.CONFIG SET <name> <value>.
  // THREAD_COUNT is fixed at module load time (paper, Section II): GET
  // reports it, SET is rejected.  PLAN_CACHE_* expose the query
  // compilation cache: capacity (settable) and hit/miss/invalidation
  // counters aggregated across the keyspace.  WAL_* expose the
  // durability subsystem: fsync policy and rewrite threshold are
  // settable at runtime; the counters are monotonic.
  auto row = [](exec::ResultSet& rs, const char* name, std::int64_t v) {
    rs.rows.push_back({graph::Value(name), graph::Value(v)});
  };
  auto srow = [](exec::ResultSet& rs, const char* name, const std::string& v) {
    rs.rows.push_back({graph::Value(name), graph::Value(v)});
  };
  if (argv.size() >= 3 && cypher::keyword_eq(argv[1], "GET")) {
    Reply r;
    r.kind = Reply::Kind::kResult;
    r.result.columns = {"name", "value"};
    const bool all = argv[2] == "*";
    const auto want = [&](std::string_view name) {
      return all || cypher::keyword_eq(argv[2], name);
    };
    if (want("DURABILITY"))
      srow(r.result, "DURABILITY", durability_ ? "on" : "off");
    if (durability_) {
      if (want("WAL_FSYNC"))
        srow(r.result, "WAL_FSYNC",
             persist::fsync_policy_name(durability_->fsync_policy()));
      if (want("WAL_MAX_BYTES"))
        row(r.result, "WAL_MAX_BYTES",
            static_cast<std::int64_t>(durability_->wal_max_bytes()));
      if (want("WAL_SIZE_BYTES"))
        row(r.result, "WAL_SIZE_BYTES",
            static_cast<std::int64_t>(durability_->wal_size_bytes()));
      if (want("WAL_APPENDS") || want("WAL_BYTES") || want("WAL_FSYNCS") ||
          want("WAL_REWRITES") || want("WAL_REPLAYED_FRAMES") ||
          want("WAL_SKIPPED_FRAMES") || want("WAL_TORN_BYTES") ||
          want("WAL_BATCH_FRAMES") || want("WAL_BATCH_ENTITIES")) {
        const auto c = durability_->counters();
        if (want("WAL_APPENDS"))
          row(r.result, "WAL_APPENDS", static_cast<std::int64_t>(c.appends));
        if (want("WAL_BYTES"))
          row(r.result, "WAL_BYTES",
              static_cast<std::int64_t>(c.appended_bytes));
        if (want("WAL_FSYNCS"))
          row(r.result, "WAL_FSYNCS", static_cast<std::int64_t>(c.fsyncs));
        if (want("WAL_REWRITES"))
          row(r.result, "WAL_REWRITES",
              static_cast<std::int64_t>(c.rewrites));
        if (want("WAL_REPLAYED_FRAMES"))
          row(r.result, "WAL_REPLAYED_FRAMES",
              static_cast<std::int64_t>(c.replayed_frames));
        if (want("WAL_SKIPPED_FRAMES"))
          row(r.result, "WAL_SKIPPED_FRAMES",
              static_cast<std::int64_t>(c.skipped_frames));
        if (want("WAL_TORN_BYTES"))
          row(r.result, "WAL_TORN_BYTES",
              static_cast<std::int64_t>(c.torn_bytes));
        if (want("WAL_BATCH_FRAMES"))
          row(r.result, "WAL_BATCH_FRAMES",
              static_cast<std::int64_t>(c.batch_frames));
        if (want("WAL_BATCH_ENTITIES"))
          row(r.result, "WAL_BATCH_ENTITIES",
              static_cast<std::int64_t>(c.batch_entities));
      }
    }
    if (want("THREAD_COUNT"))
      row(r.result, "THREAD_COUNT",
          static_cast<std::int64_t>(worker_count()));
    if (want("GB_THREADS"))
      row(r.result, "GB_THREADS", static_cast<std::int64_t>(gb::threads()));
    if (want("PLAN_CACHE_SIZE")) {
      std::lock_guard lk(keyspace_mu_);
      row(r.result, "PLAN_CACHE_SIZE",
          static_cast<std::int64_t>(plan_cache_capacity_));
    }
    if (want("PLAN_CACHE_HITS") || want("PLAN_CACHE_MISSES") ||
        want("PLAN_CACHE_INVALIDATIONS")) {
      const auto c = plan_cache_counters();
      if (want("PLAN_CACHE_HITS"))
        row(r.result, "PLAN_CACHE_HITS", static_cast<std::int64_t>(c.hits));
      if (want("PLAN_CACHE_MISSES"))
        row(r.result, "PLAN_CACHE_MISSES",
            static_cast<std::int64_t>(c.misses));
      if (want("PLAN_CACHE_INVALIDATIONS"))
        row(r.result, "PLAN_CACHE_INVALIDATIONS",
            static_cast<std::int64_t>(c.invalidations));
    }
    if (r.result.rows.empty())
      return {Reply::Kind::kError, "unknown config '" + argv[2] + "'", {}};
    return r;
  }
  if (argv.size() >= 4 && cypher::keyword_eq(argv[1], "SET")) {
    if (cypher::keyword_eq(argv[2], "THREAD_COUNT"))
      return {Reply::Kind::kError,
              "THREAD_COUNT is fixed at module load time", {}};
    if (cypher::keyword_eq(argv[2], "GB_THREADS")) {
      // Unlike THREAD_COUNT (one query = one worker, fixed at load),
      // GB_THREADS is the intra-operation kernel parallelism and is safe
      // to retune at runtime; 1 = the exact serial kernels.
      char* end = nullptr;
      const long long v = std::strtoll(argv[3].c_str(), &end, 10);
      if (end == argv[3].c_str() || *end != '\0' || v < 1 || v > 1024)
        return {Reply::Kind::kError,
                "GB_THREADS must be an integer in [1, 1024]", {}};
      gb::set_threads(static_cast<std::size_t>(v));
      return {Reply::Kind::kStatus, "OK", {}};
    }
    if (cypher::keyword_eq(argv[2], "WAL_FSYNC") ||
        cypher::keyword_eq(argv[2], "WAL_MAX_BYTES")) {
      if (!durability_)
        return {Reply::Kind::kError,
                "durability is disabled (no data dir configured)", {}};
      if (cypher::keyword_eq(argv[2], "WAL_FSYNC")) {
        durability_->set_fsync_policy(persist::parse_fsync_policy(argv[3]));
        return {Reply::Kind::kStatus, "OK", {}};
      }
      char* end = nullptr;
      const long long v = std::strtoll(argv[3].c_str(), &end, 10);
      if (end == argv[3].c_str() || *end != '\0' || v < 1024)
        return {Reply::Kind::kError,
                "WAL_MAX_BYTES must be an integer >= 1024", {}};
      durability_->set_wal_max_bytes(static_cast<std::uint64_t>(v));
      return {Reply::Kind::kStatus, "OK", {}};
    }
    if (cypher::keyword_eq(argv[2], "PLAN_CACHE_SIZE")) {
      char* end = nullptr;
      const long long v = std::strtoll(argv[3].c_str(), &end, 10);
      if (end == argv[3].c_str() || *end != '\0' || v < 1)
        return {Reply::Kind::kError,
                "PLAN_CACHE_SIZE must be a positive integer", {}};
      std::lock_guard lk(keyspace_mu_);
      plan_cache_capacity_ = static_cast<std::size_t>(v);
      for (auto& [key, entry] : keyspace_)
        entry->plan_cache.set_capacity(plan_cache_capacity_);
      return {Reply::Kind::kStatus, "OK", {}};
    }
    return {Reply::Kind::kError, "unknown config '" + argv[2] + "'", {}};
  }
  return {Reply::Kind::kError, "GRAPH.CONFIG GET|SET <name> [value]", {}};
}

}  // namespace rg::server

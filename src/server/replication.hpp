// Streaming WAL replication — the replica side of the link.
//
// The replica is a RESP *client* of its primary on one dedicated
// connection (mirroring Redis's replica-initiated PSYNC direction):
//
//   1. Full sync: REPL.SNAPSHOT transfers every graph serialized at its
//      per-graph LSN watermark, plus the primary's WAL position
//      (start_lsn) captured BEFORE serialization began.  The replica
//      drops its keyspace, applies each snapshot through the kInternal
//      GRAPH.RESTORE.PAYLOAD dispatch path, and records the watermarks.
//   2. Streaming: REPL.FETCH <replica_id> <from_lsn> <max> tails the
//      primary's retained WAL, shipping frames continuously; each frame
//      re-applies through Server::dispatch with CommandSource::
//      kReplication — the same table-driven path recovery uses — and is
//      NEVER re-journaled (ci/lint_invariants.py rule replica-apply).
//      Frames at or below a graph's snapshot watermark are skipped:
//      they are already inside the transferred snapshot.
//   3. The fetch cursor doubles as the ack heartbeat: asking for
//      from_lsn acknowledges everything below it, which the primary
//      records per replica (WAIT, GRAPH.INFO replication).
//
// Reconnect: a dropped link retries with the applied LSN carried
// forward (partial resync).  If the primary compacted that history
// away it answers -NOSYNC and the replica falls back to a full sync on
// the same connection.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "server/resp.hpp"
#include "util/socket.hpp"
#include "util/sync.hpp"

namespace rg::server {

class Server;

/// One replica's ack state as the primary sees it (GRAPH.INFO).
struct ReplicaAckInfo {
  std::string id;
  std::uint64_t acked_lsn = 0;
  std::uint64_t age_ms = 0;  // since the last fetch heartbeat
};

/// Role + link snapshot for GRAPH.INFO replication (and tests).
struct ReplicationInfo {
  bool is_replica = false;
  // replica side
  std::string primary_host;
  std::uint16_t primary_port = 0;
  std::string link;  // connecting | syncing | streaming | disconnected
  std::uint64_t applied_lsn = 0;
  std::uint64_t full_syncs = 0;
  std::uint64_t partial_syncs = 0;
  std::uint64_t frames_applied = 0;
  std::uint64_t reconnects = 0;
  std::string primary_runid;  // from the last full sync's REPL.SNAPSHOT
  std::string last_error;
  // primary side
  std::string run_id;  // this incarnation's replication run id
  std::uint64_t master_lsn = 0;
  std::vector<ReplicaAckInfo> replicas;  // stale acks already expired
};

/// The replication link state machine.  Owned by Server (REPLICAOF
/// starts one, REPLICAOF NO ONE / re-pointing stops it); all work runs
/// on one background thread so command dispatch never blocks on the
/// primary.
class ReplicationClient {
 public:
  /// Starts the link thread.  `resume_lsn`/`resume_watermarks`/
  /// `resume_runid` carry a previous link's position forward
  /// (re-REPLICAOF to the same primary): a non-zero resume LSN with the
  /// run id it was minted against skips the full sync and attempts a
  /// partial resync from the retained WAL.  The primary validates the
  /// run id on every fetch, so a resume against a restarted primary is
  /// refused (NOSYNC) rather than silently diverging.
  ReplicationClient(Server& server, std::string host, std::uint16_t port,
                    std::uint64_t resume_lsn = 0,
                    std::map<std::string, std::uint64_t> resume_watermarks = {},
                    std::string resume_runid = {});
  ~ReplicationClient();  // stop()

  ReplicationClient(const ReplicationClient&) = delete;
  ReplicationClient& operator=(const ReplicationClient&) = delete;

  /// Stop the thread and close the link (idempotent; the destructor
  /// calls it).  After stop() the watermark map is safe to read.
  void stop();

  const std::string& host() const { return host_; }
  std::uint16_t port() const { return port_; }
  const std::string& replica_id() const { return id_; }

  std::uint64_t applied_lsn() const {
    return applied_.load(std::memory_order_acquire);
  }

  /// Snapshot watermarks from the last full sync; call after stop()
  /// (the link thread owns the map while running).
  const std::map<std::string, std::uint64_t>& watermarks() const {
    return watermarks_;
  }

  /// Run id of the primary incarnation the applied LSN is valid
  /// against (empty until the first full sync succeeds).
  std::string primary_runid() const {
    util::MutexLock lk(mu_);
    return primary_runid_;
  }

  /// Test/debug knob: a paused link stops fetching (its applied LSN and
  /// acks freeze) without dropping the connection — deterministic
  /// staleness for WAIT/lag tests.
  void set_paused(bool paused) {
    paused_.store(paused, std::memory_order_release);
  }
  bool paused() const { return paused_.load(std::memory_order_acquire); }

  const char* link_state() const;
  void fill_info(ReplicationInfo& info) const;

  /// Frames requested per REPL.FETCH round trip.
  static constexpr std::size_t kFetchBatch = 256;

 private:
  enum class State { kConnecting, kSyncing, kStreaming, kDisconnected };

  void run();
  void full_sync(util::TcpStream& s);
  void apply_frame(const std::string& blob);
  RespValue request(util::TcpStream& s, const std::vector<std::string>& argv);
  void idle_wait(int ms);
  void set_state(State s) { state_.store(s, std::memory_order_release); }

  Server& srv_;
  std::string host_;
  std::uint16_t port_;
  std::string id_;  // random, persists across reconnects of this link

  std::atomic<std::uint64_t> applied_{0};
  /// Per-graph snapshot watermarks from the last full sync.  Touched by
  /// the link thread only while it runs; readable after stop().
  std::map<std::string, std::uint64_t> watermarks_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> paused_{false};
  std::atomic<State> state_{State::kConnecting};
  std::atomic<std::uint64_t> full_syncs_{0};
  std::atomic<std::uint64_t> partial_syncs_{0};
  std::atomic<std::uint64_t> frames_applied_{0};
  std::atomic<std::uint64_t> reconnects_{0};

  mutable util::Mutex mu_;
  util::CondVar cv_;  // wakes idle_wait on stop()
  /// The live connection, so stop() can shutdown_both() a blocked read.
  util::TcpStream* active_ RG_GUARDED_BY(mu_) = nullptr;
  std::string last_error_ RG_GUARDED_BY(mu_);
  /// Primary run id the cursor is valid against (see primary_runid()).
  std::string primary_runid_ RG_GUARDED_BY(mu_);

  std::string rdbuf_;  // reply reassembly (link thread only)
  std::thread thread_;
};

}  // namespace rg::server

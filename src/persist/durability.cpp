#include "persist/durability.hpp"

#include <algorithm>
#include <cstdio>
#include <random>
#include <sstream>

#include "util/file_io.hpp"

namespace rg::persist {

namespace {

constexpr const char* kManifestName = "MANIFEST";

/// Manifest tokens are space-separated; escape whitespace, '%' and
/// control bytes in graph keys as %XX.  An empty key encodes as a lone
/// '%' (which is never produced by escaping itself).
std::string escape_key(const std::string& s) {
  if (s.empty()) return "%";
  static const char* hex = "0123456789abcdef";
  std::string out;
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    if (c <= 0x20 || c == '%' || c == 0x7f) {
      out += '%';
      out += hex[c >> 4];
      out += hex[c & 0xf];
    } else {
      out += ch;
    }
  }
  return out;
}

std::string unescape_key(const std::string& s) {
  if (s == "%") return "";
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      out += static_cast<char>(
          std::stoi(s.substr(i + 1, 2), nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream iss(line);
  std::string tok;
  while (iss >> tok) out.push_back(std::move(tok));
  return out;
}

/// Fresh replication run id per open (Redis replid): 32 hex chars.
std::string make_run_id() {
  std::random_device rd;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%08x%08x%08x%08x", rd(), rd(), rd(), rd());
  return buf;
}

}  // namespace

DurabilityManager::DurabilityManager(std::string data_dir, Options options)
    : dir_(std::move(data_dir)), options_(options), run_id_(make_run_id()) {
  util::ensure_dir(dir_);
  const std::string manifest_path = path_of(kManifestName);
  if (!util::path_exists(manifest_path)) {
    wal_files_.push_back(wal_file(epoch_));
    return;  // fresh directory; manifest is published in open_and_replay
  }

  const std::string text = util::read_file(manifest_path);
  std::istringstream lines(text);
  std::string line;
  bool saw_header = false;
  while (std::getline(lines, line)) {
    const auto tok = tokens_of(line);
    if (tok.empty()) continue;
    if (!saw_header) {
      if (tok.size() != 2 || tok[0] != "RGMANIFEST" || tok[1] != "1")
        throw PersistError("bad manifest header in " + manifest_path);
      saw_header = true;
      continue;
    }
    if (tok[0] == "epoch" && tok.size() == 2) {
      epoch_ = std::stoull(tok[1]);
    } else if (tok[0] == "wal" && tok.size() == 2) {
      wal_files_.push_back(tok[1]);
    } else if (tok[0] == "graph" && tok.size() == 4) {
      snapshots_.push_back(
          {unescape_key(tok[1]), tok[2], std::stoull(tok[3])});
    } else {
      throw PersistError("bad manifest line '" + line + "'");
    }
  }
  if (!saw_header) throw PersistError("empty manifest " + manifest_path);
  if (wal_files_.empty()) wal_files_.push_back(wal_file(epoch_));
}

DurabilityManager::~DurabilityManager() = default;

std::vector<DurabilityManager::SnapshotInfo> DurabilityManager::snapshots()
    const {
  util::MutexLock lk(mu_);
  return snapshots_;
}

void DurabilityManager::open_and_replay(
    const std::function<bool(std::uint64_t,
                             const std::vector<std::string>&)>& apply)
    RG_NO_THREAD_SAFETY_ANALYSIS {
  // Single-threaded by contract (constructor-time, before any append),
  // so mu_ is NOT held — and thread-safety analysis is off for exactly
  // that reason: the apply callback re-enters the server, whose write
  // path nests its own locks around append()'s mu_ — holding mu_
  // across the callback would invert that order.
  if (opened_) throw PersistError("open_and_replay called twice");

  std::uint64_t max_lsn = 0;
  std::uint64_t first_lsn = 0;  // oldest frame still in a retained log
  std::uint64_t wal_next = 0;   // LSN after the last frame scanned so far
  for (const auto& snap : snapshots_) max_lsn = std::max(max_lsn, snap.lsn);
  wal_start_lsns_.assign(wal_files_.size(), 0);
  for (std::size_t i = 0; i < wal_files_.size(); ++i) {
    const std::string path = path_of(wal_files_[i]);
    std::uint64_t file_first = 0;
    if (util::path_exists(path)) {  // else: fresh epoch, never written
      const WalScan scan = scan_wal(path, [&](const WalFrame& frame) {
        if (first_lsn == 0) first_lsn = frame.lsn;
        if (file_first == 0) file_first = frame.lsn;
        if (apply(frame.lsn, frame.argv))
          ++retired_.replayed_frames;
        else
          ++retired_.skipped_frames;
      });
      max_lsn = std::max(max_lsn, scan.last_lsn);
      if (scan.last_lsn) wal_next = scan.last_lsn + 1;
      if (scan.torn_tail) {
        retired_.torn_bytes += scan.total_bytes - scan.valid_bytes;
        util::truncate_file(path, scan.valid_bytes);
      }
    }
    // An empty file starts where the frames before it left off; with
    // none yet, the fixup below stamps it with the first append's LSN.
    wal_start_lsns_[i] = file_first ? file_first : wal_next;
  }
  next_lsn_ = max_lsn + 1;
  for (auto& start : wal_start_lsns_)
    if (start == 0) start = next_lsn_;
  // Replication floor: with frames retained, everything before the
  // first is gone; with an empty log, nothing up to max_lsn (all folded
  // into snapshots) can be served.
  retained_floor_ = first_lsn ? first_lsn - 1 : max_lsn;

  writer_ = std::make_unique<WalWriter>(path_of(wal_files_.back()), epoch_,
                                        next_lsn_, options_.fsync);
  write_manifest_locked();  // publishes the fresh-dir manifest too
  remove_unreferenced_locked();
  opened_ = true;
}

std::uint64_t DurabilityManager::append(
    const std::vector<std::string>& argv) {
  util::MutexLock lk(mu_);
  return writer_->append(argv);
}

std::uint64_t DurabilityManager::append_if(
    const std::vector<std::string>& argv,
    const std::function<bool()>& guard) {
  util::MutexLock lk(mu_);
  if (!guard()) return 0;
  return writer_->append(argv);
}

std::uint64_t DurabilityManager::append_batch_if(
    const std::vector<std::string>& argv, std::uint64_t entities,
    const std::function<bool()>& guard) {
  util::MutexLock lk(mu_);
  if (!guard()) return 0;
  const std::uint64_t lsn = writer_->append(argv);
  ++retired_.batch_frames;
  retired_.batch_entities += entities;
  return lsn;
}

bool DurabilityManager::compaction_due() const {
  util::MutexLock lk(mu_);
  return writer_ && writer_->size_bytes() > options_.wal_max_bytes;
}

std::uint64_t DurabilityManager::begin_rewrite() {
  util::MutexLock lk(mu_);
  writer_->sync();  // the closing epoch must be fully durable first
  const std::uint64_t next = writer_->next_lsn();
  const FsyncPolicy policy = writer_->policy();
  fold_writer_counters_locked();
  writer_.reset();
  ++epoch_;
  wal_files_.push_back(wal_file(epoch_));
  wal_start_lsns_.push_back(next);
  // Once this rewrite commits, every frame below the fresh epoch's
  // first LSN is deleted with the old logs; replicas behind that point
  // will need a full resync (REPL.FETCH answers NOSYNC).
  pending_floor_ = next - 1;
  writer_ = std::make_unique<WalWriter>(path_of(wal_files_.back()), epoch_,
                                        next, policy);
  // Transitional manifest: both logs listed, old snapshots still
  // authoritative.  A crash between here and commit loses nothing.
  write_manifest_locked();
  return epoch_;
}

std::string DurabilityManager::snapshot_file(std::uint64_t epoch,
                                             std::size_t index) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "snap-%llu-%zu.rgr",
                static_cast<unsigned long long>(epoch), index);
  return buf;
}

void DurabilityManager::commit_rewrite(std::uint64_t epoch,
                                       std::vector<SnapshotInfo> entries) {
  util::MutexLock lk(mu_);
  if (epoch != epoch_)
    throw PersistError("commit_rewrite epoch mismatch");
  snapshots_ = std::move(entries);
  wal_files_.clear();
  wal_files_.push_back(wal_file(epoch_));
  wal_start_lsns_.assign(1, pending_floor_ + 1);
  write_manifest_locked();
  ++retired_.rewrites;
  remove_unreferenced_locked();
  retained_floor_ = std::max(retained_floor_, pending_floor_);
  ++file_generation_;  // the retained file set changed ...
  cursors_.clear();    // ... so every tail cursor is stale
}

std::uint64_t DurabilityManager::last_lsn() const {
  util::MutexLock lk(mu_);
  return (writer_ ? writer_->next_lsn() : next_lsn_) - 1;
}

std::uint64_t DurabilityManager::retained_floor() const {
  util::MutexLock lk(mu_);
  return retained_floor_;
}

std::size_t DurabilityManager::file_covering_locked(std::uint64_t lsn) const {
  // Last retained file whose first LSN is at or below `lsn` (starts are
  // ascending).  Nothing qualifying means the frame can only be in the
  // oldest file (or nowhere — the tailer just skips to EOF).
  std::size_t index = 0;
  for (std::size_t i = 0; i < wal_start_lsns_.size(); ++i)
    if (wal_start_lsns_[i] <= lsn) index = i;
  return index;
}

bool DurabilityManager::read_frames(const std::string& replica_id,
                                    std::uint64_t from_lsn,
                                    std::size_t max_frames,
                                    std::vector<WalFrame>& out) {
  // The poll below reads (bounded chunks) while holding mu_, briefly
  // blocking appends — the same discipline as append's own write(2)+
  // fsync under mu_; the WAL mutex is the innermost in the hierarchy.
  util::MutexLock lk(mu_);
  if (!opened_ || !writer_) return false;
  if (from_lsn == 0 || from_lsn <= retained_floor_) return false;
  if (from_lsn >= writer_->next_lsn()) return true;  // caught up
  TailCursor& cur = cursors_[replica_id];
  cur.last_used = ++cursor_tick_;
  if (cursors_.size() > kMaxTailCursors) {
    // Evict the least-recently-fetching replica's cursor (it rebuilds
    // on its next fetch); bounds fds and memory against id churn.
    auto victim = cursors_.begin();
    for (auto it = cursors_.begin(); it != cursors_.end(); ++it)
      if (it->second.last_used < victim->second.last_used) victim = it;
    cursors_.erase(victim);
  }
  if (!cur.tailer || cur.generation != file_generation_ ||
      cur.next_lsn != from_lsn) {
    cur.generation = file_generation_;
    cur.file_index = file_covering_locked(from_lsn);
    cur.next_lsn = from_lsn;
    cur.tailer = std::make_unique<WalTailer>(
        path_of(wal_files_[cur.file_index]), from_lsn);
  }
  std::size_t got = 0;
  while (got < max_frames) {
    got += cur.tailer->poll(max_frames - got,
                            [&](const WalFrame& f) { out.push_back(f); });
    if (cur.tailer->corrupt()) {
      // The cursor can never progress past a corrupt frame in a
      // retained log (the live tail's torn frames are NOT corruption —
      // the tailer just waits for the rest).  Fail the fetch so the
      // replica full-resyncs instead of polling emptily forever.
      cursors_.erase(replica_id);
      return false;
    }
    if (got >= max_frames) break;
    // Short poll: a closed epoch at clean EOF hands over to the next
    // retained log; the live epoch's incomplete tail means "try later".
    if (cur.file_index + 1 < wal_files_.size() && cur.tailer->at_eof()) {
      ++cur.file_index;
      cur.tailer = std::make_unique<WalTailer>(path_of(wal_files_[cur.file_index]),
                                               from_lsn);
    } else {
      break;
    }
  }
  if (got > 0) cur.next_lsn = out.back().lsn + 1;
  return true;
}

void DurabilityManager::advance_next_lsn(std::uint64_t min_next) {
  util::MutexLock lk(mu_);
  if (next_lsn_ < min_next) next_lsn_ = min_next;
  if (writer_) writer_->advance_next_lsn(min_next);
}

FsyncPolicy DurabilityManager::fsync_policy() const {
  util::MutexLock lk(mu_);
  return options_.fsync;
}

void DurabilityManager::set_fsync_policy(FsyncPolicy policy) {
  util::MutexLock lk(mu_);
  options_.fsync = policy;
  if (writer_) writer_->set_policy(policy);
}

std::uint64_t DurabilityManager::wal_max_bytes() const {
  util::MutexLock lk(mu_);
  return options_.wal_max_bytes;
}

void DurabilityManager::set_wal_max_bytes(std::uint64_t bytes) {
  util::MutexLock lk(mu_);
  options_.wal_max_bytes = bytes;
}

std::uint64_t DurabilityManager::wal_size_bytes() const {
  util::MutexLock lk(mu_);
  return writer_ ? writer_->size_bytes() : 0;
}

Counters DurabilityManager::counters() const {
  util::MutexLock lk(mu_);
  Counters total = retired_;
  if (writer_) {
    const auto c = writer_->counters();
    total.appends += c.appends;
    total.appended_bytes += c.appended_bytes;
    total.fsyncs += c.fsyncs;
  }
  return total;
}

std::string DurabilityManager::wal_file(std::uint64_t epoch) const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "wal-%llu.log",
                static_cast<unsigned long long>(epoch));
  return buf;
}

void DurabilityManager::write_manifest_locked() {
  std::string out = "RGMANIFEST 1\n";
  out += "epoch " + std::to_string(epoch_) + "\n";
  for (const auto& file : wal_files_) out += "wal " + file + "\n";
  for (const auto& snap : snapshots_)
    out += "graph " + escape_key(snap.key) + " " + snap.file + " " +
           std::to_string(snap.lsn) + "\n";
  util::atomic_write_file(path_of(kManifestName), out);
}

void DurabilityManager::fold_writer_counters_locked() {
  const auto c = writer_->counters();
  retired_.appends += c.appends;
  retired_.appended_bytes += c.appended_bytes;
  retired_.fsyncs += c.fsyncs;
}

void DurabilityManager::remove_unreferenced_locked() {
  std::vector<std::string> keep{kManifestName};
  keep.insert(keep.end(), wal_files_.begin(), wal_files_.end());
  for (const auto& snap : snapshots_) keep.push_back(snap.file);
  for (const auto& name : util::list_dir(dir_)) {
    const bool ours = name.rfind("wal-", 0) == 0 || name.rfind("snap-", 0) == 0;
    if (!ours) continue;
    if (std::find(keep.begin(), keep.end(), name) == keep.end())
      util::remove_file(path_of(name));
  }
}

}  // namespace rg::persist

#include "persist/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "mem/accounting.hpp"
#include "util/crc32.hpp"
#include "util/file_io.hpp"

namespace rg::persist {

namespace {

constexpr char kMagic[4] = {'R', 'G', 'W', 'L'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kHeaderBytes = 4 + 4 + 8;
// A frame larger than this is treated as corruption, not a real length.
constexpr std::uint32_t kMaxPayload = 256u << 20;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

std::string encode_payload(std::uint64_t lsn,
                           const std::vector<std::string>& argv) {
  std::string payload;
  put_u64(payload, lsn);
  put_u32(payload, static_cast<std::uint32_t>(argv.size()));
  for (const auto& a : argv) {
    put_u32(payload, static_cast<std::uint32_t>(a.size()));
    payload += a;
  }
  return payload;
}

/// Decode one payload; returns false (never throws) on any truncation —
/// the caller treats that as a corrupt frame.
bool decode_payload(const std::string& payload, WalFrame& out) {
  const char* p = payload.data();
  std::size_t left = payload.size();
  auto need = [&](std::size_t n) {
    if (left < n) return false;
    return true;
  };
  if (!need(12)) return false;
  out.lsn = get_u64(p);
  const std::uint32_t argc = get_u32(p + 8);
  p += 12;
  left -= 12;
  if (argc > 1u << 20) return false;
  out.argv.clear();
  out.argv.reserve(argc);
  for (std::uint32_t i = 0; i < argc; ++i) {
    if (!need(4)) return false;
    const std::uint32_t len = get_u32(p);
    p += 4;
    left -= 4;
    if (!need(len)) return false;
    out.argv.emplace_back(p, len);
    p += len;
    left -= len;
  }
  return left == 0;
}

}  // namespace

FsyncPolicy parse_fsync_policy(const std::string& name) {
  std::string low;
  for (char c : name)
    low.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (low == "always") return FsyncPolicy::kAlways;
  if (low == "everysec") return FsyncPolicy::kEverySec;
  if (low == "no") return FsyncPolicy::kNo;
  throw PersistError("unknown fsync policy '" + name +
                     "' (want always|everysec|no)");
}

const char* fsync_policy_name(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways: return "always";
    case FsyncPolicy::kEverySec: return "everysec";
    case FsyncPolicy::kNo: return "no";
  }
  return "?";
}

std::string encode_argv(const std::vector<std::string>& argv) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(argv.size()));
  for (const auto& a : argv) {
    put_u32(out, static_cast<std::uint32_t>(a.size()));
    out += a;
  }
  return out;
}

bool decode_argv(std::string_view data, std::vector<std::string>& out) {
  const char* p = data.data();
  std::size_t left = data.size();
  if (left < 4) return false;
  const std::uint32_t count = get_u32(p);
  p += 4;
  left -= 4;
  if (count > 1u << 20) return false;
  out.clear();
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (left < 4) return false;
    const std::uint32_t len = get_u32(p);
    p += 4;
    left -= 4;
    if (left < len) return false;
    out.emplace_back(p, len);
    p += len;
    left -= len;
  }
  return left == 0;
}

WalScan scan_wal(const std::string& path,
                 const std::function<void(const WalFrame&)>& fn) {
  std::string data;
  try {
    data = util::read_file(path);
  } catch (const util::FileError& e) {
    throw PersistError(e.what());
  }
  if (data.size() < kHeaderBytes) {
    // A crash can tear even the 16-byte header.  If what exists is a
    // prefix of a real header this is an empty log with a torn tail;
    // anything else is not a WAL file at all.
    if (std::memcmp(data.data(), kMagic, std::min<std::size_t>(4, data.size())) != 0)
      throw PersistError("bad WAL header in " + path);
    WalScan scan;
    scan.total_bytes = data.size();
    scan.torn_tail = !data.empty();
    return scan;
  }
  if (std::memcmp(data.data(), kMagic, 4) != 0)
    throw PersistError("bad WAL header in " + path);
  if (get_u32(data.data() + 4) != kVersion)
    throw PersistError("unsupported WAL version in " + path);

  WalScan scan;
  scan.epoch = get_u64(data.data() + 8);
  scan.total_bytes = data.size();
  std::size_t off = kHeaderBytes;
  WalFrame frame;
  while (off < data.size()) {
    if (data.size() - off < 8) break;  // torn frame header
    const std::uint32_t len = get_u32(data.data() + off);
    const std::uint32_t crc = get_u32(data.data() + off + 4);
    if (len > kMaxPayload || data.size() - off - 8 < len) break;
    const std::string payload = data.substr(off + 8, len);
    if (util::crc32(payload) != crc) break;
    if (!decode_payload(payload, frame)) break;
    fn(frame);
    scan.last_lsn = frame.lsn;
    ++scan.frames;
    off += 8 + len;
  }
  scan.valid_bytes = off;
  scan.torn_tail = off != data.size();
  return scan;
}

// ---------------------------------------------------------------------------
// WalTailer
// ---------------------------------------------------------------------------

WalTailer::WalTailer(const std::string& path, std::uint64_t from_lsn,
                     std::size_t buf_bytes)
    : path_(path), from_lsn_(from_lsn),
      buf_bytes_(std::max<std::size_t>(16, buf_bytes)) {
  fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd_ < 0)
    throw PersistError("cannot open WAL for tailing " + path + ": " +
                       std::strerror(errno));
  // Each tailer (one per replica cursor) reads through a buffer of
  // buf_bytes_; charge it for the tailer's lifetime.
  mem::accountant().add(mem::Component::kWalBuffers, buf_bytes_);
}

WalTailer::~WalTailer() {
  if (fd_ >= 0) ::close(fd_);
  mem::accountant().sub(mem::Component::kWalBuffers, buf_bytes_);
}

bool WalTailer::fill() {
  std::string chunk(buf_bytes_, '\0');
  ssize_t n;
  do {
    n = ::read(fd_, chunk.data(), chunk.size());
  } while (n < 0 && errno == EINTR);
  if (n < 0)
    throw PersistError("WAL tail read failed on " + path_ + ": " +
                       std::strerror(errno));
  at_eof_ = n == 0;
  if (n > 0) pending_.append(chunk.data(), static_cast<std::size_t>(n));
  return n > 0;
}

std::size_t WalTailer::poll(std::size_t max_frames,
                            const std::function<void(const WalFrame&)>& fn) {
  if (corrupt_) return 0;
  std::size_t delivered = 0;
  std::size_t off = 0;  // consumed prefix of pending_
  WalFrame frame;
  while (delivered < max_frames) {
    if (!header_done_) {
      while (pending_.size() < kHeaderBytes) {
        if (!fill()) break;
      }
      if (pending_.size() < kHeaderBytes) break;  // header still torn
      if (std::memcmp(pending_.data(), kMagic, 4) != 0 ||
          get_u32(pending_.data() + 4) != kVersion) {
        corrupt_ = true;
        break;
      }
      epoch_ = get_u64(pending_.data() + 8);
      off = kHeaderBytes;
      header_done_ = true;
    }
    // Frame header, then the full payload; an incomplete suffix stays in
    // pending_ for the next poll (split-frame reassembly).
    while (pending_.size() - off < 8) {
      if (!fill()) break;
    }
    if (pending_.size() - off < 8) break;
    const std::uint32_t len = get_u32(pending_.data() + off);
    const std::uint32_t crc = get_u32(pending_.data() + off + 4);
    if (len > kMaxPayload) {
      corrupt_ = true;
      break;
    }
    while (pending_.size() - off - 8 < len) {
      if (!fill()) break;
    }
    if (pending_.size() - off - 8 < len) break;
    const std::string payload = pending_.substr(off + 8, len);
    if (util::crc32(payload) != crc || !decode_payload(payload, frame)) {
      corrupt_ = true;
      break;
    }
    off += 8 + len;
    if (frame.lsn < from_lsn_) continue;  // below the resume cursor
    fn(frame);
    last_lsn_ = frame.lsn;
    ++delivered;
  }
  pending_.erase(0, off);
  return delivered;
}

// ---------------------------------------------------------------------------
// WalWriter
// ---------------------------------------------------------------------------

WalWriter::WalWriter(const std::string& path, std::uint64_t epoch,
                     std::uint64_t next_lsn, FsyncPolicy policy)
    : path_(path), epoch_(epoch), next_lsn_(next_lsn), policy_(policy) {
  bool fresh = !util::path_exists(path);
  if (!fresh) {
    // A file torn inside the header (crash during creation) is re-made
    // from scratch; scan_wal reported it as an empty log.
    struct stat st{};
    if (::stat(path.c_str(), &st) == 0 &&
        static_cast<std::uint64_t>(st.st_size) < kHeaderBytes) {
      util::remove_file(path);
      fresh = true;
    }
  }
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0)
    throw PersistError("cannot open WAL " + path + ": " +
                       std::strerror(errno));
  if (fresh) {
    std::string header(kMagic, 4);
    put_u32(header, kVersion);
    put_u64(header, epoch);
    std::size_t done = 0;
    while (done < header.size()) {
      const ssize_t n =
          ::write(fd_, header.data() + done, header.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw PersistError("cannot write WAL header: " +
                           std::string(std::strerror(errno)));
      }
      done += static_cast<std::size_t>(n);
    }
    ::fdatasync(fd_);
    size_bytes_ = header.size();
  } else {
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    size_bytes_ = end < 0 ? 0 : static_cast<std::uint64_t>(end);
  }
  flusher_ = std::thread([this] { flusher_loop(); });
}

WalWriter::~WalWriter() {
  {
    util::MutexLock lk(flusher_mu_);
    stop_ = true;
  }
  flusher_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  // Final best-effort flush so a clean shutdown loses nothing even
  // under kNo / kEverySec.
  {
    util::MutexLock lk(mu_);
    if (dirty_ && fd_ >= 0) {
      ::fdatasync(fd_);
      dirty_ = false;
      ++counters_.fsyncs;
    }
  }
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t WalWriter::append(const std::vector<std::string>& argv) {
  util::MutexLock lk(mu_);
  if (fd_ < 0)
    throw PersistError("WAL " + path_ + " is closed after a write failure");
  const std::uint64_t lsn = next_lsn_.fetch_add(1);
  const std::string payload = encode_payload(lsn, argv);
  std::string frame;
  frame.reserve(8 + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, util::crc32(payload));
  frame += payload;

  std::size_t done = 0;
  while (done < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + done, frame.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A partial frame must not stay in the log: recovery stops at the
      // first torn frame, so garbage here would silently discard every
      // later (acknowledged!) append.  Cut back to the last good offset;
      // if even that fails the log is unusable — refuse further appends.
      const int saved_errno = errno;
      if (::ftruncate(fd_, static_cast<off_t>(size_bytes_)) != 0) {
        ::close(fd_);
        fd_ = -1;
      }
      throw PersistError("WAL append failed on " + path_ + ": " +
                         std::strerror(saved_errno));
    }
    done += static_cast<std::size_t>(n);
  }
  size_bytes_ += frame.size();
  ++counters_.appends;
  counters_.appended_bytes += frame.size();
  dirty_ = true;
  if (policy_.load(std::memory_order_relaxed) == FsyncPolicy::kAlways) {
    if (::fdatasync(fd_) != 0)
      throw PersistError("WAL fsync failed on " + path_ + ": " +
                         std::strerror(errno));
    dirty_ = false;
    ++counters_.fsyncs;
  }
  return lsn;
}

void WalWriter::sync() {
  util::MutexLock lk(mu_);
  if (!dirty_ || fd_ < 0) return;
  if (::fdatasync(fd_) != 0)
    throw PersistError("WAL fsync failed on " + path_ + ": " +
                       std::strerror(errno));
  dirty_ = false;
  ++counters_.fsyncs;
}

void WalWriter::advance_next_lsn(std::uint64_t min_next) {
  util::MutexLock lk(mu_);  // serialize against append's fetch_add
  if (next_lsn_.load(std::memory_order_relaxed) < min_next)
    next_lsn_.store(min_next, std::memory_order_relaxed);
}

void WalWriter::set_policy(FsyncPolicy policy) {
  policy_.store(policy);
  flusher_cv_.notify_all();  // wake so a tightened policy applies promptly
}

std::uint64_t WalWriter::size_bytes() const {
  util::MutexLock lk(mu_);
  return size_bytes_;
}

WalWriter::Counters WalWriter::counters() const {
  util::MutexLock lk(mu_);
  return counters_;
}

void WalWriter::flusher_loop() {
  util::MutexLock lk(flusher_mu_);
  while (!stop_) {
    flusher_cv_.wait_for(flusher_mu_, std::chrono::seconds(1));
    if (stop_) break;
    if (policy_.load(std::memory_order_relaxed) != FsyncPolicy::kEverySec)
      continue;
    util::MutexLock wlk(mu_);
    if (dirty_ && fd_ >= 0 && ::fdatasync(fd_) == 0) {
      dirty_ = false;
      ++counters_.fsyncs;
    }
  }
}

}  // namespace rg::persist

// DurabilityManager — snapshots + WAL under one data directory, playing
// the role Redis RDB+AOF play for RedisGraph.
//
// Data-dir layout:
//
//   MANIFEST            textual root of trust (atomically replaced)
//   wal-<epoch>.log     journal epochs (usually one; two mid-rewrite)
//   snap-<epoch>-<n>.rgr   one RGR1 snapshot per graph key
//
// MANIFEST format (one token-separated record per line):
//
//   RGMANIFEST 1
//   epoch <e>
//   wal <file>                  (repeated, replay order)
//   graph <escaped-key> <file> <lsn>
//
// Recovery contract: load every `graph` snapshot, then replay the `wal`
// files in order, skipping any frame whose LSN is <= the target graph's
// snapshot LSN (its watermark) — frames journaled between the rewrite's
// log rotation and that graph's snapshot are already inside the
// snapshot.  Replay stops at the first torn/corrupt frame and truncates
// the log there, so a crashed append can never poison later writes.
//
// Rewrite (AOF-rewrite-style compaction) is a three-step protocol driven
// by the server, crash-safe at every boundary:
//   1. begin_rewrite(): rotate to a fresh epoch log and publish a
//      transitional manifest listing BOTH logs (old snapshots still
//      authoritative) — a crash here replays old snapshot + both logs;
//   2. the server snapshots every graph under its read lock, stamping
//      each file with {epoch, per-graph last LSN};
//   3. commit_rewrite(): publish the final manifest (new snapshots, new
//      log only) and delete the superseded files.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "persist/wal.hpp"
#include "util/sync.hpp"

namespace rg::persist {

struct Options {
  FsyncPolicy fsync = FsyncPolicy::kEverySec;
  std::uint64_t wal_max_bytes = 4ull << 20;  // rewrite threshold
};

/// Monotonic durability counters (GRAPH.CONFIG GET WAL_*).
struct Counters {
  std::uint64_t appends = 0;
  std::uint64_t appended_bytes = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t rewrites = 0;
  std::uint64_t replayed_frames = 0;  // applied during recovery
  std::uint64_t skipped_frames = 0;   // below a snapshot watermark
  std::uint64_t torn_bytes = 0;       // dropped from a crashed tail
  std::uint64_t batch_frames = 0;     // frames carrying a whole batch
  std::uint64_t batch_entities = 0;   // entities inside those frames
};

class DurabilityManager {
 public:
  /// One graph snapshot registered in the manifest.
  struct SnapshotInfo {
    std::string key;   // graph key in the server keyspace
    std::string file;  // file name inside the data dir
    std::uint64_t lsn = 0;  // watermark: last LSN already applied
  };

  /// Opens (creating if needed) `data_dir` and reads the manifest.
  /// Snapshot loading and WAL replay are driven by the owner via
  /// snapshots() / replay() — this class never interprets commands.
  DurabilityManager(std::string data_dir, Options options);
  ~DurabilityManager();

  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  const std::string& dir() const { return dir_; }
  std::string path_of(const std::string& file) const {
    return dir_ + "/" + file;
  }

  /// Snapshots recorded by the manifest (load these first).  Returned by
  /// value: the vector is rewritten by commit_rewrite() concurrently.
  std::vector<SnapshotInfo> snapshots() const;

  /// Replay every intact journal frame in LSN order.  `apply` returns
  /// true if it applied the frame, false if it skipped it (watermark).
  /// Afterwards the log is open for appends: the torn tail (if any) is
  /// truncated and stray files from a crashed rewrite are removed.
  /// Must be called exactly once before append().
  void open_and_replay(
      const std::function<bool(std::uint64_t lsn,
                               const std::vector<std::string>& argv)>& apply);

  /// Journal one command; returns its LSN (durable per fsync policy).
  std::uint64_t append(const std::vector<std::string>& argv);

  /// Like append(), but evaluates `guard` under the mutex that
  /// serializes appends and journals nothing (returning 0) when it is
  /// false.  Lets a caller order its frame atomically against a
  /// concurrent unlink frame (GRAPH.DELETE / RESTORE): once the
  /// unlinking command has flipped its flag and journaled, no stale
  /// writer can slip a frame in behind it.
  std::uint64_t append_if(const std::vector<std::string>& argv,
                          const std::function<bool()>& guard);

  /// append_if for batched ingestion (GRAPH.BULK): the whole batch is
  /// journaled as ONE frame — replaying it recreates every entity — and
  /// the batch counters record how many entities that one frame carries.
  /// Keeping the accounting here (rather than per-command in the server)
  /// makes the amortization observable at the WAL layer, where it is
  /// actually realized.
  std::uint64_t append_batch_if(const std::vector<std::string>& argv,
                                std::uint64_t entities,
                                const std::function<bool()>& guard);

  /// True once the live log exceeds wal_max_bytes (rewrite due).
  bool compaction_due() const;

  // -- replication support -----------------------------------------------

  /// Random id minted when this manager was opened (Redis's replid): a
  /// restart — even onto the same data dir — gets a fresh one.  LSNs
  /// alone cannot validate a resync cursor: a crash under fsync=everysec
  /// can lose journaled frames whose LSNs are then reissued to different
  /// writes, so a replica resuming by LSN against a restarted primary
  /// would silently diverge.  REPL.SNAPSHOT ships the run id and
  /// REPL.FETCH must echo it; a mismatch forces a full resync.
  const std::string& run_id() const { return run_id_; }

  /// LSN of the most recent append (0 before the first ever).
  std::uint64_t last_lsn() const;

  /// Every frame at or below this LSN has been folded into snapshots and
  /// its log deleted — the WAL no longer retains it.  A replica whose
  /// cursor falls at or below the floor must full-resync.
  std::uint64_t retained_floor() const;

  /// Read up to `max_frames` frames with lsn >= `from_lsn` from the
  /// retained logs into `out` (appending).  Returns false when the
  /// requested range starts at or below the retained floor OR a retained
  /// log turns out to be corrupt at the cursor (it could never progress
  /// past that point) — the caller (REPL.FETCH) turns both into a NOSYNC
  /// error and the replica full-resyncs.  Sequential fetches from the
  /// same `replica_id` reuse a per-replica cursor, so each replica tails
  /// the growing log incrementally; a rebuilt cursor starts at the
  /// retained file covering `from_lsn`, never a scan from file 0.
  bool read_frames(const std::string& replica_id, std::uint64_t from_lsn,
                   std::size_t max_frames, std::vector<WalFrame>& out);

  /// Raise the next append's LSN to at least `min_next` (promotion: a
  /// new primary's first write must outrank everything it applied).
  void advance_next_lsn(std::uint64_t min_next);

  // -- rewrite protocol (see file header) --------------------------------
  std::uint64_t begin_rewrite();
  std::string snapshot_file(std::uint64_t epoch, std::size_t index) const;
  void commit_rewrite(std::uint64_t epoch, std::vector<SnapshotInfo> entries);

  // -- knobs & observability ---------------------------------------------
  FsyncPolicy fsync_policy() const;
  void set_fsync_policy(FsyncPolicy policy);
  std::uint64_t wal_max_bytes() const;
  void set_wal_max_bytes(std::uint64_t bytes);
  std::uint64_t wal_size_bytes() const;
  Counters counters() const;

 private:
  std::string wal_file(std::uint64_t epoch) const;
  void write_manifest_locked() RG_REQUIRES(mu_);
  void fold_writer_counters_locked() RG_REQUIRES(mu_);
  void remove_unreferenced_locked() RG_REQUIRES(mu_);

  std::string dir_;

  mutable util::Mutex mu_;  // guards everything below
  Options options_ RG_GUARDED_BY(mu_);
  std::uint64_t epoch_ RG_GUARDED_BY(mu_) = 0;
  // Replay order; back() is live.
  std::vector<std::string> wal_files_ RG_GUARDED_BY(mu_);
  std::vector<SnapshotInfo> snapshots_ RG_GUARDED_BY(mu_);
  std::unique_ptr<WalWriter> writer_ RG_GUARDED_BY(mu_);
  // Counters from closed epoch writers + recovery.
  Counters retired_ RG_GUARDED_BY(mu_);
  std::uint64_t next_lsn_ RG_GUARDED_BY(mu_) = 1;
  bool opened_ RG_GUARDED_BY(mu_) = false;

  // -- replication tail state --------------------------------------------
  /// Frames <= floor are gone (see retained_floor()).  Set during
  /// open_and_replay from the oldest scanned frame; moved forward by
  /// commit_rewrite, which deletes the closed epochs.
  std::uint64_t retained_floor_ RG_GUARDED_BY(mu_) = 0;
  /// Floor candidate captured at begin_rewrite (first LSN of the fresh
  /// epoch, minus one); promoted into retained_floor_ on commit.
  std::uint64_t pending_floor_ RG_GUARDED_BY(mu_) = 0;
  /// First LSN that lives in (or will land in) wal_files_[i]; kept in
  /// lockstep with wal_files_ so a rebuilt tail cursor opens the file
  /// covering its LSN instead of decoding the whole retained set.
  std::vector<std::uint64_t> wal_start_lsns_ RG_GUARDED_BY(mu_);
  /// Index of the retained file whose range covers `lsn`.
  std::size_t file_covering_locked(std::uint64_t lsn) const RG_REQUIRES(mu_);

  /// Sequential-fetch cursor for read_frames, one per replica id (two
  /// replicas streaming must not thrash a shared cursor): rebuilt
  /// whenever that replica's LSN or the retained file set (generation)
  /// moves away; least-recently-used cursors are evicted past the cap.
  struct TailCursor {
    std::unique_ptr<WalTailer> tailer;
    std::size_t file_index = 0;     // into wal_files_ at build time
    std::uint64_t generation = 0;   // wal_files_ revision when built
    std::uint64_t next_lsn = 0;     // first LSN the next poll delivers
    std::uint64_t last_used = 0;    // cursor_tick_ at the last fetch
  };
  static constexpr std::size_t kMaxTailCursors = 64;
  std::map<std::string, TailCursor> cursors_ RG_GUARDED_BY(mu_);
  std::uint64_t cursor_tick_ RG_GUARDED_BY(mu_) = 0;
  std::uint64_t file_generation_ RG_GUARDED_BY(mu_) = 0;

  /// Replication run id (see run_id()); immutable after construction.
  std::string run_id_;
};

}  // namespace rg::persist

// Write-ahead log — the AOF half of the durability subsystem.
//
// One append-only file per epoch.  Layout:
//
//   file header:  magic "RGWL", u32 version, u64 epoch
//   frame:        u32 payload_len, u32 crc32(payload), payload
//   payload:      u64 lsn, u32 argc, argc x (u32 len, bytes)
//
// Every mutating server command is journaled as its argv, stamped with a
// monotonically increasing log sequence number (LSN) that is global
// across epochs.  Recovery scans frames in order and stops at the first
// torn or corrupt frame (a crashed writer can leave a partial tail; it
// must never poison the valid prefix).
//
// Fsync policy mirrors Redis appendfsync:
//   kAlways    fdatasync after every append (group-commit per command)
//   kEverySec  a background thread syncs once per second
//   kNo        leave flushing to the OS page cache
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace rg::persist {

class PersistError : public std::runtime_error {
 public:
  explicit PersistError(const std::string& what)
      : std::runtime_error("persist: " + what) {}
};

enum class FsyncPolicy { kAlways, kEverySec, kNo };

/// Parse "always" / "everysec" / "no" (case-insensitive); throws
/// PersistError on anything else.
FsyncPolicy parse_fsync_policy(const std::string& name);
const char* fsync_policy_name(FsyncPolicy policy);

/// One recovered journal entry.
struct WalFrame {
  std::uint64_t lsn = 0;
  std::vector<std::string> argv;
};

/// Result of scanning a WAL file for its valid frame prefix.
struct WalScan {
  std::uint64_t epoch = 0;
  std::uint64_t last_lsn = 0;       // 0 when no frames decoded
  std::uint64_t valid_bytes = 0;    // offset of the first torn/corrupt byte
  std::uint64_t total_bytes = 0;    // file size as scanned
  std::uint64_t frames = 0;
  bool torn_tail = false;           // trailing garbage was present
};

/// Scan `path`, invoking `fn` for every intact frame in order; stops at
/// the first torn or CRC-corrupt frame.  Throws PersistError only if the
/// file header itself is unreadable or has the wrong magic (a torn tail
/// is normal after a crash; a bad header means the file is not a WAL).
WalScan scan_wal(const std::string& path,
                 const std::function<void(const WalFrame&)>& fn);

/// Length-prefixed string-list codec — the WAL payload's argv encoding
/// (u32 count, count x (u32 len, bytes)) exposed for reuse: replication
/// ships snapshots and frame batches as nested encode_argv blobs, so
/// both sides of the wire share the journal's own binary-safe framing.
std::string encode_argv(const std::vector<std::string>& argv);

/// Decode a blob produced by encode_argv; returns false (never throws)
/// on truncation, trailing garbage or a hostile count/length.
bool decode_argv(std::string_view data, std::vector<std::string>& out);

/// Incremental WAL reader — the streaming half of replication.  Unlike
/// scan_wal it never loads the whole file: frames are decoded from a
/// bounded read buffer (frames split across read boundaries reassemble
/// across polls), an incomplete frame at the tail simply ends the poll
/// (the writer may still be appending it — poll again), and a cursor
/// can start mid-log by skipping every frame below `from_lsn`.
class WalTailer {
 public:
  /// Open `path`.  Frames with lsn < `from_lsn` are decoded but not
  /// delivered.  `buf_bytes` bounds each read(2) (small values exercise
  /// split-frame reassembly; the default suits production tailing).
  WalTailer(const std::string& path, std::uint64_t from_lsn,
            std::size_t buf_bytes = 64 * 1024);
  ~WalTailer();

  WalTailer(const WalTailer&) = delete;
  WalTailer& operator=(const WalTailer&) = delete;

  /// Deliver up to `max_frames` intact frames (in LSN order, filtered by
  /// from_lsn) to `fn`; returns the number delivered.  Returns 0 when
  /// the tail holds no complete frame yet — not an error, poll again.
  std::size_t poll(std::size_t max_frames,
                   const std::function<void(const WalFrame&)>& fn);

  /// True once a complete frame failed its CRC or decode: everything
  /// beyond it is unreachable (matches scan_wal's torn-tail stop).
  bool corrupt() const { return corrupt_; }

  /// No undelivered bytes are buffered and the last read hit EOF.  A
  /// closed epoch file at clean EOF is exhausted; a live file may grow.
  bool at_eof() const { return at_eof_ && pending_.empty(); }

  /// Epoch from the file header (0 until the header has been read).
  std::uint64_t epoch() const { return epoch_; }

  /// LSN of the last frame delivered (0 before the first delivery).
  std::uint64_t last_lsn() const { return last_lsn_; }

 private:
  bool fill();  // one bounded read; returns true if bytes arrived

  std::string path_;
  int fd_ = -1;
  std::uint64_t from_lsn_;
  std::size_t buf_bytes_;
  std::string pending_;   // undecoded carry-over between polls
  bool header_done_ = false;
  bool corrupt_ = false;
  bool at_eof_ = false;
  std::uint64_t epoch_ = 0;
  std::uint64_t last_lsn_ = 0;
};

/// The append side.  Thread-safe: appends serialize internally.
class WalWriter {
 public:
  struct Counters {
    std::uint64_t appends = 0;
    std::uint64_t appended_bytes = 0;
    std::uint64_t fsyncs = 0;
  };

  /// Open (creating if needed) the epoch file at `path`.  `next_lsn` is
  /// the LSN the next append will be stamped with.  A fresh file gets
  /// the header written (and synced) immediately.
  WalWriter(const std::string& path, std::uint64_t epoch,
            std::uint64_t next_lsn, FsyncPolicy policy);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Journal one command; returns its LSN.  With kAlways the frame is on
  /// stable storage when this returns.
  std::uint64_t append(const std::vector<std::string>& argv);

  /// Force an fsync now (used at clean shutdown and epoch hand-off).
  void sync();

  /// Raise next_lsn to at least `min_next` (no-op when already past).
  /// Replica promotion calls this so the first locally journaled write
  /// is stamped above everything applied from the old primary.
  void advance_next_lsn(std::uint64_t min_next);

  FsyncPolicy policy() const { return policy_.load(); }
  void set_policy(FsyncPolicy policy);

  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t next_lsn() const { return next_lsn_.load(); }
  std::uint64_t size_bytes() const;
  const std::string& path() const { return path_; }
  Counters counters() const;

 private:
  void flusher_loop();

  std::string path_;
  std::uint64_t epoch_;
  std::atomic<std::uint64_t> next_lsn_;
  std::atomic<FsyncPolicy> policy_;

  // Serializes append/sync and guards the counters.  Note: fdatasync
  // while holding mu_ is the WAL's job — mu_ is the innermost lock in
  // the hierarchy (see util/sync.hpp), so nothing can queue behind it
  // except other appends, which must wait for durability anyway.
  mutable util::Mutex mu_;
  Counters counters_ RG_GUARDED_BY(mu_);
  std::uint64_t size_bytes_ RG_GUARDED_BY(mu_) = 0;
  int fd_ RG_GUARDED_BY(mu_) = -1;
  bool dirty_ RG_GUARDED_BY(mu_) = false;  // appended since the last fsync

  // kEverySec flusher.  Lock order: flusher_mu_ before mu_.
  util::Mutex flusher_mu_;
  util::CondVar flusher_cv_;
  bool stop_ RG_GUARDED_BY(flusher_mu_) = false;
  std::thread flusher_;
};

}  // namespace rg::persist

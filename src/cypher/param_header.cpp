#include "cypher/param_header.hpp"

#include <cstdint>
#include <utility>

#include "cypher/lexer.hpp"

namespace rg::cypher {

SplitQuery split_param_header(const std::string& text) {
  const auto toks = tokenize(text);
  if (toks.empty() || toks[0].type != Tok::kIdent ||
      !keyword_eq(toks[0].text, "CYPHER"))
    return {text, {}};

  ParamValues params;
  std::size_t i = 1;
  while (i + 2 < toks.size() && toks[i].type == Tok::kIdent &&
         toks[i + 1].type == Tok::kEq) {
    const std::string& name = toks[i].text;
    std::size_t vi = i + 2;
    bool negative = false;
    if (toks[vi].type == Tok::kDash) {
      negative = true;
      ++vi;
    }
    graph::Value v;
    const auto& vt = toks[vi];
    if (vt.type == Tok::kInteger) {
      v = graph::Value(static_cast<std::int64_t>(
          std::stoll(vt.text)) * (negative ? -1 : 1));
    } else if (vt.type == Tok::kFloat) {
      v = graph::Value(std::stod(vt.text) * (negative ? -1.0 : 1.0));
    } else if (vt.type == Tok::kString) {
      v = graph::Value(vt.text);
    } else if (vt.type == Tok::kIdent && keyword_eq(vt.text, "TRUE")) {
      v = graph::Value(true);
    } else if (vt.type == Tok::kIdent && keyword_eq(vt.text, "FALSE")) {
      v = graph::Value(false);
    } else if (vt.type == Tok::kIdent && keyword_eq(vt.text, "NULL")) {
      v = graph::Value::null();
    } else {
      break;  // not a literal: header ends here
    }
    params[name] = std::move(v);
    i = vi + 1;
  }
  if (i >= toks.size() || toks[i].type == Tok::kEnd)
    return {text, {}};  // nothing after the header: treat as plain text
  // The query body starts at toks[i].pos.
  return {text.substr(toks[i].pos), std::move(params)};
}

}  // namespace rg::cypher

#include "cypher/parser.hpp"

#include <cstdlib>

#include "cypher/lexer.hpp"

namespace rg::cypher {

bool is_aggregate_function(const std::string& name) {
  return keyword_eq(name, "COUNT") || keyword_eq(name, "SUM") ||
         keyword_eq(name, "AVG") || keyword_eq(name, "MIN") ||
         keyword_eq(name, "MAX") || keyword_eq(name, "COLLECT");
}

namespace {

/// The parser: one pass over the token stream.
class Parser {
 public:
  explicit Parser(std::string_view text) : toks_(tokenize(text)) {}

  Query parse_query() {
    Query q;
    while (!at(Tok::kEnd)) {
      if (accept(Tok::kSemicolon)) continue;
      q.clauses.push_back(parse_clause());
    }
    if (q.clauses.empty()) throw err("empty query");
    return q;
  }

  ExprPtr parse_only_expression() {
    auto e = parse_expr();
    expect(Tok::kEnd, "end of expression");
    return e;
  }

 private:
  // --- token helpers -------------------------------------------------------

  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(std::size_t k = 1) const {
    return toks_[std::min(pos_ + k, toks_.size() - 1)];
  }
  bool at(Tok t) const { return cur().type == t; }
  bool at_kw(std::string_view kw) const {
    return at(Tok::kIdent) && keyword_eq(cur().text, kw);
  }
  bool accept(Tok t) {
    if (!at(t)) return false;
    ++pos_;
    return true;
  }
  bool accept_kw(std::string_view kw) {
    if (!at_kw(kw)) return false;
    ++pos_;
    return true;
  }
  Token expect(Tok t, const std::string& what) {
    if (!at(t)) throw err("expected " + what);
    return toks_[pos_++];
  }
  void expect_kw(std::string_view kw) {
    if (!accept_kw(kw)) throw err("expected " + std::string(kw));
  }
  ParseError err(const std::string& what) const {
    return ParseError(what + ", got '" + cur().text + "'", cur().pos);
  }

  // --- clauses -------------------------------------------------------------

  Clause parse_clause() {
    Clause c{};
    if (at_kw("MATCH") || at_kw("OPTIONAL")) {
      c.kind = Clause::Kind::kMatch;
      c.match = parse_match();
    } else if (at_kw("CREATE")) {
      // CREATE INDEX ON :Label(attr)  vs  CREATE pattern
      if (peek().type == Tok::kIdent && keyword_eq(peek().text, "INDEX")) {
        c.kind = Clause::Kind::kCreateIndex;
        c.create_index = parse_create_index();
      } else {
        c.kind = Clause::Kind::kCreate;
        ++pos_;  // CREATE
        c.create.paths = parse_pattern_list();
      }
    } else if (at_kw("MERGE")) {
      c.kind = Clause::Kind::kMerge;
      ++pos_;  // MERGE
      c.merge.path = parse_path();
    } else if (at_kw("DELETE") || at_kw("DETACH")) {
      c.kind = Clause::Kind::kDelete;
      c.del = parse_delete();
    } else if (at_kw("SET")) {
      c.kind = Clause::Kind::kSet;
      c.set = parse_set();
    } else if (at_kw("UNWIND")) {
      c.kind = Clause::Kind::kUnwind;
      c.unwind = parse_unwind();
    } else if (at_kw("WITH")) {
      c.kind = Clause::Kind::kWith;
      c.with = parse_with();
    } else if (at_kw("RETURN")) {
      c.kind = Clause::Kind::kReturn;
      c.ret = parse_return();
    } else {
      throw err("expected a clause keyword");
    }
    return c;
  }

  MatchClause parse_match() {
    MatchClause m;
    if (accept_kw("OPTIONAL")) m.optional = true;
    expect_kw("MATCH");
    m.paths = parse_pattern_list();
    if (accept_kw("WHERE")) m.where = parse_expr();
    return m;
  }

  CreateIndexClause parse_create_index() {
    expect_kw("CREATE");
    expect_kw("INDEX");
    expect_kw("ON");
    expect(Tok::kColon, "':'");
    CreateIndexClause ci;
    ci.label = expect(Tok::kIdent, "label name").text;
    expect(Tok::kLParen, "'('");
    ci.attr = expect(Tok::kIdent, "attribute name").text;
    expect(Tok::kRParen, "')'");
    return ci;
  }

  DeleteClause parse_delete() {
    DeleteClause d;
    if (accept_kw("DETACH")) d.detach = true;
    expect_kw("DELETE");
    d.targets.push_back(parse_expr());
    while (accept(Tok::kComma)) d.targets.push_back(parse_expr());
    return d;
  }

  SetClause parse_set() {
    expect_kw("SET");
    SetClause s;
    do {
      SetItem item;
      item.var = expect(Tok::kIdent, "variable").text;
      expect(Tok::kDot, "'.'");
      item.prop = expect(Tok::kIdent, "property name").text;
      expect(Tok::kEq, "'='");
      item.value = parse_expr();
      s.items.push_back(std::move(item));
    } while (accept(Tok::kComma));
    return s;
  }

  UnwindClause parse_unwind() {
    expect_kw("UNWIND");
    UnwindClause u;
    u.list = parse_expr();
    expect_kw("AS");
    u.alias = expect(Tok::kIdent, "alias").text;
    return u;
  }

  WithClause parse_with() {
    expect_kw("WITH");
    WithClause w;
    w.projection = parse_projection_body();
    if (accept_kw("WHERE")) w.where = parse_expr();
    return w;
  }

  ReturnClause parse_return() {
    expect_kw("RETURN");
    return parse_projection_body();
  }

  ReturnClause parse_projection_body() {
    ReturnClause r;
    if (accept_kw("DISTINCT")) r.distinct = true;
    if (accept(Tok::kStar)) {
      r.star = true;
    } else {
      do {
        ProjectionItem item;
        const std::size_t start_tok = pos_;
        item.expr = parse_expr();
        if (accept_kw("AS")) {
          item.alias = expect(Tok::kIdent, "alias").text;
        } else {
          item.alias = text_between(start_tok, pos_);
        }
        r.items.push_back(std::move(item));
      } while (accept(Tok::kComma));
    }
    if (accept_kw("ORDER")) {
      expect_kw("BY");
      do {
        SortItem si;
        si.expr = parse_expr();
        if (accept_kw("DESC") || accept_kw("DESCENDING")) si.ascending = false;
        else if (accept_kw("ASC") || accept_kw("ASCENDING")) si.ascending = true;
        r.order_by.push_back(std::move(si));
      } while (accept(Tok::kComma));
    }
    if (accept_kw("SKIP")) r.skip = parse_expr();
    if (accept_kw("LIMIT")) r.limit = parse_expr();
    return r;
  }

  /// Reconstruct source text of tokens [from, to) for default aliases.
  std::string text_between(std::size_t from, std::size_t to) const {
    std::string out;
    for (std::size_t k = from; k < to; ++k) {
      if (!out.empty() && (toks_[k].type == Tok::kIdent ||
                           toks_[k].type == Tok::kInteger))
        out += toks_[k - 1].type == Tok::kDot ? "" : "";
      switch (toks_[k].type) {
        case Tok::kString: out += "'" + toks_[k].text + "'"; break;
        default: out += toks_[k].text;
      }
    }
    return out;
  }

  // --- patterns ------------------------------------------------------------

  std::vector<PatternPath> parse_pattern_list() {
    std::vector<PatternPath> paths;
    do {
      paths.push_back(parse_path());
    } while (accept(Tok::kComma));
    return paths;
  }

  PatternPath parse_path() {
    PatternPath p;
    p.nodes.push_back(parse_node());
    while (at(Tok::kDash) || at(Tok::kArrowLeft)) {
      p.rels.push_back(parse_rel());
      p.nodes.push_back(parse_node());
    }
    return p;
  }

  NodePattern parse_node() {
    expect(Tok::kLParen, "'('");
    NodePattern n;
    if (at(Tok::kIdent) && !at(Tok::kColon)) n.var = toks_[pos_++].text;
    while (accept(Tok::kColon))
      n.labels.push_back(expect(Tok::kIdent, "label").text);
    if (at(Tok::kLBrace)) n.props = parse_property_map();
    expect(Tok::kRParen, "')'");
    return n;
  }

  RelPattern parse_rel() {
    RelPattern r;
    bool from_left = false;  // saw '<-'
    if (accept(Tok::kArrowLeft)) {
      from_left = true;
    } else {
      expect(Tok::kDash, "'-'");
    }
    if (accept(Tok::kLBracket)) {
      if (at(Tok::kIdent)) r.var = toks_[pos_++].text;
      if (accept(Tok::kColon)) {
        r.types.push_back(expect(Tok::kIdent, "relationship type").text);
        while (accept(Tok::kPipe)) {
          accept(Tok::kColon);  // R1|:R2 also legal
          r.types.push_back(expect(Tok::kIdent, "relationship type").text);
        }
      }
      if (accept(Tok::kStar)) {
        r.var_length = true;
        r.min_hops = 1;
        if (at(Tok::kInteger)) {
          r.min_hops = static_cast<unsigned>(std::stoul(toks_[pos_++].text));
          r.max_hops = r.min_hops;  // *n alone = exactly n
        }
        if (accept(Tok::kDotDot)) {
          r.max_hops.reset();
          if (at(Tok::kInteger))
            r.max_hops = static_cast<unsigned>(std::stoul(toks_[pos_++].text));
        }
      }
      if (at(Tok::kLBrace)) r.props = parse_property_map();
      expect(Tok::kRBracket, "']'");
    }
    // closing direction
    if (from_left) {
      expect(Tok::kDash, "'-'");
      r.direction = RelDirection::kRightToLeft;
    } else if (accept(Tok::kArrowRight)) {
      r.direction = RelDirection::kLeftToRight;
    } else {
      expect(Tok::kDash, "'-' or '->'");
      r.direction = RelDirection::kBoth;
    }
    return r;
  }

  PropertyMap parse_property_map() {
    expect(Tok::kLBrace, "'{'");
    PropertyMap props;
    if (!at(Tok::kRBrace)) {
      do {
        std::string key = expect(Tok::kIdent, "property name").text;
        expect(Tok::kColon, "':'");
        props.emplace_back(std::move(key), parse_expr());
      } while (accept(Tok::kComma));
    }
    expect(Tok::kRBrace, "'}'");
    return props;
  }

  // --- expressions (precedence climbing) ------------------------------------

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    auto lhs = parse_xor();
    while (accept_kw("OR"))
      lhs = Expr::make_binary(BinOp::kOr, std::move(lhs), parse_xor());
    return lhs;
  }

  ExprPtr parse_xor() {
    auto lhs = parse_and();
    while (accept_kw("XOR"))
      lhs = Expr::make_binary(BinOp::kXor, std::move(lhs), parse_and());
    return lhs;
  }

  ExprPtr parse_and() {
    auto lhs = parse_not();
    while (accept_kw("AND"))
      lhs = Expr::make_binary(BinOp::kAnd, std::move(lhs), parse_not());
    return lhs;
  }

  ExprPtr parse_not() {
    if (accept_kw("NOT")) return Expr::make_unary(UnOp::kNot, parse_not());
    return parse_comparison();
  }

  ExprPtr parse_comparison() {
    auto lhs = parse_additive();
    for (;;) {
      BinOp op;
      if (accept(Tok::kEq)) op = BinOp::kEq;
      else if (accept(Tok::kNeq)) op = BinOp::kNeq;
      else if (accept(Tok::kLt)) op = BinOp::kLt;
      else if (accept(Tok::kLe)) op = BinOp::kLe;
      else if (accept(Tok::kGt)) op = BinOp::kGt;
      else if (accept(Tok::kGe)) op = BinOp::kGe;
      else if (at_kw("IN")) { ++pos_; op = BinOp::kIn; }
      else if (at_kw("STARTS")) {
        ++pos_; expect_kw("WITH"); op = BinOp::kStartsWith;
      } else if (at_kw("ENDS")) {
        ++pos_; expect_kw("WITH"); op = BinOp::kEndsWith;
      } else if (at_kw("CONTAINS")) { ++pos_; op = BinOp::kContains; }
      else if (at_kw("IS")) {
        ++pos_;
        const bool negated = accept_kw("NOT");
        expect_kw("NULL");
        lhs = Expr::make_unary(negated ? UnOp::kIsNotNull : UnOp::kIsNull,
                               std::move(lhs));
        continue;
      } else {
        break;
      }
      lhs = Expr::make_binary(op, std::move(lhs), parse_additive());
    }
    return lhs;
  }

  ExprPtr parse_additive() {
    auto lhs = parse_multiplicative();
    for (;;) {
      if (accept(Tok::kPlus))
        lhs = Expr::make_binary(BinOp::kAdd, std::move(lhs),
                                parse_multiplicative());
      else if (accept(Tok::kDash))
        lhs = Expr::make_binary(BinOp::kSub, std::move(lhs),
                                parse_multiplicative());
      else
        break;
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    auto lhs = parse_power();
    for (;;) {
      if (accept(Tok::kStar))
        lhs = Expr::make_binary(BinOp::kMul, std::move(lhs), parse_power());
      else if (accept(Tok::kSlash))
        lhs = Expr::make_binary(BinOp::kDiv, std::move(lhs), parse_power());
      else if (accept(Tok::kPercent))
        lhs = Expr::make_binary(BinOp::kMod, std::move(lhs), parse_power());
      else
        break;
    }
    return lhs;
  }

  ExprPtr parse_power() {
    auto lhs = parse_unary();
    if (accept(Tok::kCaret))
      return Expr::make_binary(BinOp::kPow, std::move(lhs), parse_power());
    return lhs;
  }

  ExprPtr parse_unary() {
    if (accept(Tok::kDash))
      return Expr::make_unary(UnOp::kNeg, parse_unary());
    if (accept(Tok::kPlus)) return parse_unary();
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    auto e = parse_primary();
    while (accept(Tok::kDot)) {
      std::string prop = expect(Tok::kIdent, "property name").text;
      e = Expr::make_property(std::move(e), std::move(prop));
    }
    return e;
  }

  ExprPtr parse_primary() {
    if (at(Tok::kInteger)) {
      auto v = graph::Value(static_cast<std::int64_t>(
          std::strtoll(toks_[pos_++].text.c_str(), nullptr, 10)));
      return Expr::make_literal(std::move(v));
    }
    if (at(Tok::kFloat)) {
      auto v = graph::Value(std::strtod(toks_[pos_++].text.c_str(), nullptr));
      return Expr::make_literal(std::move(v));
    }
    if (at(Tok::kString))
      return Expr::make_literal(graph::Value(toks_[pos_++].text));
    if (accept(Tok::kDollar)) {
      return Expr::make_parameter(expect(Tok::kIdent, "parameter name").text);
    }
    if (accept(Tok::kLParen)) {
      auto e = parse_expr();
      expect(Tok::kRParen, "')'");
      return e;
    }
    if (accept(Tok::kLBracket)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kList;
      if (!at(Tok::kRBracket)) {
        do {
          e->args.push_back(parse_expr());
        } while (accept(Tok::kComma));
      }
      expect(Tok::kRBracket, "']'");
      return e;
    }
    if (at(Tok::kIdent)) {
      // keywords-as-literals
      if (at_kw("TRUE")) { ++pos_; return Expr::make_literal(graph::Value(true)); }
      if (at_kw("FALSE")) { ++pos_; return Expr::make_literal(graph::Value(false)); }
      if (at_kw("NULL")) { ++pos_; return Expr::make_literal(graph::Value::null()); }

      std::string name = toks_[pos_++].text;
      if (accept(Tok::kLParen)) {
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kFunction;
        e->name = std::move(name);
        if (accept_kw("DISTINCT")) e->distinct = true;
        if (accept(Tok::kStar)) {
          auto star = std::make_unique<Expr>();
          star->kind = Expr::Kind::kStar;
          e->args.push_back(std::move(star));
        } else if (!at(Tok::kRParen)) {
          do {
            e->args.push_back(parse_expr());
          } while (accept(Tok::kComma));
        }
        expect(Tok::kRParen, "')'");
        return e;
      }
      return Expr::make_variable(std::move(name));
    }
    throw err("expected an expression");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

Query parse(std::string_view query) {
  Parser p(query);
  return p.parse_query();
}

ExprPtr parse_expression(std::string_view text) {
  Parser p(text);
  return p.parse_only_expression();
}

}  // namespace rg::cypher

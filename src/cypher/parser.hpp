// Recursive-descent Cypher parser producing the AST in ast.hpp.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "cypher/ast.hpp"

namespace rg::cypher {

/// Raised on grammar violations; carries the byte offset of the token.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t pos)
      : std::runtime_error(what + " (at offset " + std::to_string(pos) + ")"),
        pos_(pos) {}
  std::size_t pos() const { return pos_; }

 private:
  std::size_t pos_;
};

/// Parse a full query.  Throws ParseError / LexError on invalid input.
Query parse(std::string_view query);

/// Parse a standalone expression (used by tests).
ExprPtr parse_expression(std::string_view text);

/// True if the function name is an aggregate (count/sum/avg/min/max/collect).
bool is_aggregate_function(const std::string& name);

}  // namespace rg::cypher

// Cypher lexer: turns query text into a token stream.
//
// Covers the openCypher subset RedisGraph's GRAPH.QUERY accepts in this
// reproduction: keywords (case-insensitive), identifiers, backtick-quoted
// identifiers, integer/float literals, single/double-quoted strings with
// escapes, and the full punctuation set used by patterns and
// expressions (including `-[`, `]->`, `..` ranges and comparison ops).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace rg::cypher {

enum class Tok {
  kEnd,
  kIdent,     // foo, `quoted`
  kInteger,   // 42
  kFloat,     // 3.14, 1e-3
  kString,    // 'abc', "abc"
  // punctuation
  kLParen, kRParen, kLBracket, kRBracket, kLBrace, kRBrace,
  kColon, kComma, kDot, kDotDot, kSemicolon, kPipe,
  kDash, kArrowRight, kArrowLeft,   // -  ->  <-
  kLt, kLe, kGt, kGe, kEq, kNeq,    // <  <=  >  >=  =  <>
  kPlus, kStar, kSlash, kPercent, kCaret,
  kDollar,
};

/// One token with source position (for error messages).
struct Token {
  Tok type = Tok::kEnd;
  std::string text;      // identifier/literal text (unquoted/unescaped)
  std::size_t pos = 0;   // byte offset in the query
};

/// Raised on malformed input (unterminated string, bad character).
class LexError : public std::runtime_error {
 public:
  LexError(const std::string& what, std::size_t pos)
      : std::runtime_error(what + " (at offset " + std::to_string(pos) + ")"),
        pos_(pos) {}
  std::size_t pos() const { return pos_; }

 private:
  std::size_t pos_;
};

/// Tokenize the whole query (appends a kEnd sentinel).
std::vector<Token> tokenize(std::string_view query);

/// Case-insensitive keyword comparison helper for the parser.
bool keyword_eq(const std::string& ident, std::string_view keyword);

}  // namespace rg::cypher

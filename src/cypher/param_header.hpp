// Query-text normalization for RedisGraph's parameterized-query syntax:
//   "CYPHER name=1 handle='bob' MATCH (n {handle: $handle}) RETURN n"
//
// split_param_header() strips the leading "CYPHER k=v ..." header and
// returns the bare query body plus the bindings.  The body is the *plan
// cache key*: every parameter variant of a query normalizes to the same
// text, so repeated parameterized queries share one compiled plan.
#pragma once

#include <map>
#include <string>

#include "graph/value.hpp"

namespace rg::cypher {

/// $name -> value bindings (same layout exec::ParamMap uses).
using ParamValues = std::map<std::string, graph::Value>;

struct SplitQuery {
  std::string body;    // query text with the parameter header removed
  ParamValues params;  // bindings declared by the header (may be empty)
};

/// Strip a leading "CYPHER k=v k2=v2 ..." header.  Values are literal
/// tokens: integers, floats, strings, booleans, null.  Text without a
/// header (or a header followed by nothing) comes back unchanged.
SplitQuery split_param_header(const std::string& text);

}  // namespace rg::cypher

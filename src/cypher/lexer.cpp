#include "cypher/lexer.hpp"

#include <cctype>

namespace rg::cypher {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool keyword_eq(const std::string& ident, std::string_view keyword) {
  if (ident.size() != keyword.size()) return false;
  for (std::size_t i = 0; i < ident.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(ident[i])) != keyword[i])
      return false;
  }
  return true;
}

std::vector<Token> tokenize(std::string_view q) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = q.size();

  auto push = [&](Tok t, std::string text, std::size_t pos) {
    out.push_back(Token{t, std::move(text), pos});
  };

  while (i < n) {
    const char c = q[i];
    // whitespace
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // comments: // to end of line
    if (c == '/' && i + 1 < n && q[i + 1] == '/') {
      while (i < n && q[i] != '\n') ++i;
      continue;
    }
    const std::size_t start = i;
    // identifiers / keywords
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(q[j])) ++j;
      push(Tok::kIdent, std::string(q.substr(i, j - i)), start);
      i = j;
      continue;
    }
    // backtick-quoted identifier
    if (c == '`') {
      std::size_t j = i + 1;
      std::string text;
      while (j < n && q[j] != '`') text += q[j++];
      if (j >= n) throw LexError("unterminated backtick identifier", start);
      push(Tok::kIdent, std::move(text), start);
      i = j + 1;
      continue;
    }
    // numbers
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(q[j]))) ++j;
      // Don't consume ".." (range) as a decimal point.
      if (j < n && q[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(q[j + 1]))) {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(q[j]))) ++j;
      }
      if (j < n && (q[j] == 'e' || q[j] == 'E')) {
        std::size_t k = j + 1;
        if (k < n && (q[k] == '+' || q[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(q[k]))) {
          is_float = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(q[j]))) ++j;
        }
      }
      push(is_float ? Tok::kFloat : Tok::kInteger,
           std::string(q.substr(i, j - i)), start);
      i = j;
      continue;
    }
    // strings
    if (c == '\'' || c == '"') {
      const char quote = c;
      std::size_t j = i + 1;
      std::string text;
      while (j < n && q[j] != quote) {
        if (q[j] == '\\' && j + 1 < n) {
          const char e = q[j + 1];
          switch (e) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case 'r': text += '\r'; break;
            case '\\': text += '\\'; break;
            case '\'': text += '\''; break;
            case '"': text += '"'; break;
            default: text += e; break;
          }
          j += 2;
        } else {
          text += q[j++];
        }
      }
      if (j >= n) throw LexError("unterminated string literal", start);
      push(Tok::kString, std::move(text), start);
      i = j + 1;
      continue;
    }
    // multi-char operators first
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && q[i + 1] == b;
    };
    if (two('-', '>')) { push(Tok::kArrowRight, "->", start); i += 2; continue; }
    if (two('<', '-')) { push(Tok::kArrowLeft, "<-", start); i += 2; continue; }
    if (two('<', '=')) { push(Tok::kLe, "<=", start); i += 2; continue; }
    if (two('>', '=')) { push(Tok::kGe, ">=", start); i += 2; continue; }
    if (two('<', '>')) { push(Tok::kNeq, "<>", start); i += 2; continue; }
    if (two('.', '.')) { push(Tok::kDotDot, "..", start); i += 2; continue; }
    if (two('!', '=')) { push(Tok::kNeq, "!=", start); i += 2; continue; }

    switch (c) {
      case '(': push(Tok::kLParen, "(", start); break;
      case ')': push(Tok::kRParen, ")", start); break;
      case '[': push(Tok::kLBracket, "[", start); break;
      case ']': push(Tok::kRBracket, "]", start); break;
      case '{': push(Tok::kLBrace, "{", start); break;
      case '}': push(Tok::kRBrace, "}", start); break;
      case ':': push(Tok::kColon, ":", start); break;
      case ',': push(Tok::kComma, ",", start); break;
      case '.': push(Tok::kDot, ".", start); break;
      case ';': push(Tok::kSemicolon, ";", start); break;
      case '|': push(Tok::kPipe, "|", start); break;
      case '-': push(Tok::kDash, "-", start); break;
      case '<': push(Tok::kLt, "<", start); break;
      case '>': push(Tok::kGt, ">", start); break;
      case '=': push(Tok::kEq, "=", start); break;
      case '+': push(Tok::kPlus, "+", start); break;
      case '*': push(Tok::kStar, "*", start); break;
      case '/': push(Tok::kSlash, "/", start); break;
      case '%': push(Tok::kPercent, "%", start); break;
      case '^': push(Tok::kCaret, "^", start); break;
      case '$': push(Tok::kDollar, "$", start); break;
      default:
        throw LexError(std::string("unexpected character '") + c + "'", start);
    }
    ++i;
  }
  push(Tok::kEnd, "", n);
  return out;
}

}  // namespace rg::cypher

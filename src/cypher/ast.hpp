// Cypher abstract syntax tree.
//
// The grammar subset (sufficient for the paper's benchmark queries, the
// examples, and a realistic engine surface):
//
//   query      := clause+
//   clause     := MATCH | OPTIONAL MATCH | CREATE | DELETE | DETACH DELETE
//               | SET | UNWIND | WITH | RETURN | CREATE INDEX ON :L(p)
//   pattern    := path (',' path)*
//   path       := node (rel node)*
//   node       := '(' var? (':' label)* props? ')'
//   rel        := '-[' var? (':' type ('|' type)*)? ('*' range?)? props? ']->'
//               | '<-[' ... ']-' | '-[' ... ']-'
//   expression := Cypher expressions with OR/AND/XOR/NOT, comparisons,
//                 arithmetic, property access, function calls (incl.
//                 aggregates with DISTINCT), lists, IN, IS (NOT) NULL,
//                 STARTS/ENDS WITH, CONTAINS.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/value.hpp"

namespace rg::cypher {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinOp {
  kOr, kAnd, kXor,
  kEq, kNeq, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv, kMod, kPow,
  kIn, kStartsWith, kEndsWith, kContains,
};

enum class UnOp { kNot, kNeg, kIsNull, kIsNotNull };

struct Expr {
  enum class Kind {
    kLiteral,    // value
    kVariable,   // name
    kProperty,   // args[0].name
    kUnary,      // un_op applied to args[0]
    kBinary,     // bin_op applied to args[0], args[1]
    kFunction,   // name(args...)  [aggregates detected by name]
    kList,       // [args...]
    kStar,       // the '*' inside count(*)
    kParameter,  // $name
  };

  Kind kind;
  graph::Value literal;       // kLiteral
  std::string name;           // variable / property / function name
  BinOp bin_op = BinOp::kEq;  // kBinary
  UnOp un_op = UnOp::kNot;    // kUnary
  bool distinct = false;      // aggregate DISTINCT flag
  std::vector<ExprPtr> args;

  static ExprPtr make_literal(graph::Value v) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kLiteral;
    e->literal = std::move(v);
    return e;
  }
  static ExprPtr make_parameter(std::string name) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kParameter;
    e->name = std::move(name);
    return e;
  }
  static ExprPtr make_variable(std::string name) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kVariable;
    e->name = std::move(name);
    return e;
  }
  static ExprPtr make_property(ExprPtr base, std::string prop) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kProperty;
    e->name = std::move(prop);
    e->args.push_back(std::move(base));
    return e;
  }
  static ExprPtr make_unary(UnOp op, ExprPtr a) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kUnary;
    e->un_op = op;
    e->args.push_back(std::move(a));
    return e;
  }
  static ExprPtr make_binary(BinOp op, ExprPtr a, ExprPtr b) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kBinary;
    e->bin_op = op;
    e->args.push_back(std::move(a));
    e->args.push_back(std::move(b));
    return e;
  }

  /// Deep copy (plans keep private copies of filter expressions).
  ExprPtr clone() const {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->literal = literal;
    e->name = name;
    e->bin_op = bin_op;
    e->un_op = un_op;
    e->distinct = distinct;
    for (const auto& a : args) e->args.push_back(a->clone());
    return e;
  }
};

/// name -> expression pairs ({k: v, ...} literals in patterns).
using PropertyMap = std::vector<std::pair<std::string, ExprPtr>>;

// ---------------------------------------------------------------------------
// Patterns
// ---------------------------------------------------------------------------

struct NodePattern {
  std::string var;                  // empty = anonymous
  std::vector<std::string> labels;  // conjunctive
  PropertyMap props;
};

enum class RelDirection { kLeftToRight, kRightToLeft, kBoth };

struct RelPattern {
  std::string var;                 // empty = anonymous
  std::vector<std::string> types;  // disjunctive (R1|R2); empty = any
  RelDirection direction = RelDirection::kLeftToRight;
  /// Variable-length bounds: unset = single hop; {1,1} is also single.
  std::optional<unsigned> min_hops;  // default 1 when var-length
  std::optional<unsigned> max_hops;  // unset with var_length = unbounded
  bool var_length = false;
  PropertyMap props;
};

struct PatternPath {
  std::vector<NodePattern> nodes;  // n+1 nodes
  std::vector<RelPattern> rels;    // n rels
};

// ---------------------------------------------------------------------------
// Clauses
// ---------------------------------------------------------------------------

struct MatchClause {
  std::vector<PatternPath> paths;
  bool optional = false;
  ExprPtr where;  // may be null
};

struct CreateClause {
  std::vector<PatternPath> paths;
};

struct DeleteClause {
  std::vector<ExprPtr> targets;  // variables
  bool detach = false;
};

struct SetItem {
  std::string var;
  std::string prop;  // empty => SET var = {..} unsupported; prop required
  ExprPtr value;
};

struct SetClause {
  std::vector<SetItem> items;
};

struct UnwindClause {
  ExprPtr list;
  std::string alias;
};

struct SortItem {
  ExprPtr expr;
  bool ascending = true;
};

struct ProjectionItem {
  ExprPtr expr;
  std::string alias;  // defaults to expression text
};

struct ReturnClause {
  bool distinct = false;
  bool star = false;  // RETURN *
  std::vector<ProjectionItem> items;
  std::vector<SortItem> order_by;
  ExprPtr skip;   // may be null
  ExprPtr limit;  // may be null
};

struct WithClause {
  ReturnClause projection;  // WITH behaves like RETURN mid-query
  ExprPtr where;            // WITH ... WHERE ...
};

struct MergeClause {
  PatternPath path;
};

struct CreateIndexClause {
  std::string label;
  std::string attr;
};

struct Clause {
  enum class Kind {
    kMatch, kCreate, kMerge, kDelete, kSet, kUnwind, kWith, kReturn,
    kCreateIndex
  };
  Kind kind;
  MatchClause match;
  CreateClause create;
  MergeClause merge;
  DeleteClause del;
  SetClause set;
  UnwindClause unwind;
  WithClause with;
  ReturnClause ret;
  CreateIndexClause create_index;
};

/// A parsed query: ordered clause list.
struct Query {
  std::vector<Clause> clauses;
};

}  // namespace rg::cypher

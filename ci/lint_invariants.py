#!/usr/bin/env python3
"""Project invariant linter: concurrency/durability rules the compiler
cannot see.  Runs over src/ as a CI gate next to the command-docs drift
gate, and as a ctest (`ctest -R lint`).

Rules
-----
raw-mutex       No raw std synchronization primitive (std::mutex,
                std::shared_mutex, std::lock_guard, std::scoped_lock,
                std::condition_variable[_any]) or its header outside
                util/sync.hpp: everything locks through the annotated
                rg::util wrappers so Clang Thread Safety Analysis sees
                it.  The std::shared_lock/std::unique_lock ADAPTERS are
                deliberately not banned — they are the documented
                escape hatch (CommandCtx::shared_lock/exclusive_lock)
                for registry-added commands outside the analyzed tree.

write-journals  Every built-in CommandSpec carrying kWrite journals
                (calls ctx.journal / ctx.journal_batch in its handler
                or a CommandHandlers helper it calls), EXCEPT kInternal
                replay frames, which by definition re-apply an already
                journaled write.  Conversely no kReadOnly handler body
                journals or mutates the DurabilityManager (append*/
                set_*): durability decisions live in the table, not in
                handler code.  The read-only check is direct-body only:
                shared helpers like run_query are flag-gated at runtime
                (journal() throws without kWrite).

io-under-lock   No blocking file I/O (fsync/fdatasync, snapshot
                save/load, atomic_write_file, fstream construction)
                inside a scope holding a GRAPH lock (a util:: guard on
                keyspace_mu_ or a GraphEntry `.lock`/`->lock`): a write
                stall on one graph must never become a keyspace-wide or
                reader-visible stall.  The WAL's own mutex is exempt —
                fsync-under-WAL-lock is that lock's entire job.

wal-frames      The WAL frame-type names and the command registry stay
                in sync: every string literal journaled as a frame name
                must be a registered built-in carrying kWrite (replay
                dispatches frames through the same table), and every
                kInternal spec (replay-only frame type) must be emitted
                by some journal call site — an unreferenced internal
                frame type is dead protocol.

replica-apply   Replication frame application (server/replication.cpp)
                re-applies writes the PRIMARY already journaled: every
                dispatch() call there must pass
                CommandSource::kReplication (so the replica-side gates
                — journaling, slowlog, the read-only check — stay off),
                and the file must never journal or append to the WAL
                itself: re-journaling an applied frame would duplicate
                it on the next recovery.

mvcc-api        Delta-matrix internals stay inside the graph layer:
                code outside src/graphblas and src/graph must not name
                the delta overlay members (delta_plus_/delta_minus_) or
                construct a GraphSnapshot directly.  Everything above
                goes through the snapshot-pin API — EpochManager::
                try_pin/pin_or_fork/invalidate for epochs and
                Graph::delta_counts() for the GRAPH.INFO gauges — so
                the MVCC representation can change without touching
                the server.

mem-accounting  Two-sided memory-subsystem hygiene.  (a) The files
                that own tracked allocations (util/data_block.hpp,
                graphblas/matrix.hpp, exec/plan_cache.cpp) must touch
                mem::accountant — dropping the charge calls silently
                stales the GRAPH.INFO memory gauges.  (b) Dictionary
                internals (mem::Dict, mem::Str) stay inside src/mem
                and src/graph: everything above deals in graph::Value
                and the mem::dict_min_string_len() threshold knob, so
                the interning representation can change without
                touching the server.

Suppressions: `// lint:allow(<rule>): <reason>` either inline on the
offending line, or — for io-under-lock — on a comment line immediately
above the guard construction, which then covers that guard's scope.

Usage:
  lint_invariants.py [--root REPO_ROOT]   # lint src/
  lint_invariants.py --self-test          # prove every rule fires
"""

import argparse
import pathlib
import re
import sys

# --------------------------------------------------------------------------
# Shared helpers
# --------------------------------------------------------------------------

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)")


def allowed(line, rule):
    """True when `line` carries an inline lint:allow for `rule`."""
    m = ALLOW_RE.search(line)
    return bool(m) and m.group(1) == rule


def strip_comments(text):
    """Blank out // and /* */ comments and string literals, preserving
    line structure, so rules never match inside them."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j + 2]))
            i = j + 2
        elif c in "\"'":
            q, j = c, i + 1
            while j < n and text[j] != q:
                j += 2 if text[j] == "\\" else 1
            out.append(q + " " * (j - i - 1) + q)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def body_of(text, decl_re):
    """The brace-balanced body following the first match of decl_re."""
    m = decl_re.search(text)
    if not m:
        return None
    i = text.find("{", m.end())
    if i < 0:
        return None
    depth, j = 1, i + 1
    while j < len(text) and depth:
        depth += {"{": 1, "}": -1}.get(text[j], 0)
        j += 1
    return text[i + 1:j - 1]


class Finding:
    def __init__(self, path, line, rule, message):
        self.path, self.line, self.rule, self.message = \
            path, line, rule, message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Rule: raw-mutex
# --------------------------------------------------------------------------

RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|shared_timed_mutex|lock_guard|scoped_lock|"
    r"condition_variable(?:_any)?)\b"
    r"|#\s*include\s*<(mutex|shared_mutex|condition_variable)>")


def check_raw_mutex(path, text):
    if path.replace("\\", "/").endswith("util/sync.hpp"):
        return []
    findings = []
    stripped = strip_comments(text)
    for lineno, (line, raw) in enumerate(
            zip(stripped.splitlines(), text.splitlines()), 1):
        m = RAW_MUTEX_RE.search(line)
        if not m or allowed(raw, "raw-mutex"):
            continue
        what = m.group(0).strip()
        findings.append(Finding(
            path, lineno, "raw-mutex",
            f"raw std synchronization primitive `{what}` outside "
            f"util/sync.hpp; use the annotated rg::util wrappers"))
    return findings


# --------------------------------------------------------------------------
# Rule: write-journals (+ read-only purity)  and  wal-frames
# Both parse the builtins table in server/command.cpp.
# --------------------------------------------------------------------------

BUILTIN_RE = re.compile(
    r'\{"([A-Z][A-Z0-9._]*)",\s*-?\d+,\s*-?\d+,\s*([\w \t|]+?),'
    r"[^{}]*?&H::(\w+)\}", re.S)
JOURNAL_CALL_RE = re.compile(r"\bjournal(?:_batch)?\s*\(")
JOURNAL_FRAME_RE = re.compile(r'\bjournal(?:_batch)?\s*\(\s*\{\s*"([^"]+)"')
DURABILITY_MUT_RE = re.compile(
    r"durability_\s*->\s*(append\w*|set_\w+)\s*\(")


def parse_builtins(text):
    """[(name, flags:set, handler)] from the CommandSpec builtins table."""
    table = body_of(text, re.compile(r"CommandSpec\s+builtins\s*\[\]\s*="))
    if table is None:
        return []
    return [(m.group(1), {f.strip() for f in m.group(2).split("|")},
             m.group(3)) for m in BUILTIN_RE.finditer(table)]


def handler_body(text, name):
    return body_of(text, re.compile(
        r"Reply\s+CommandHandlers::" + re.escape(name) + r"\s*\("))


def check_write_journals(path, text):
    builtins = parse_builtins(text)
    if not builtins:
        return []  # not the command table translation unit
    findings = []
    helper_names = {h for _, _, h in builtins}
    for name, flags, handler in builtins:
        body = handler_body(text, name if False else handler)
        if body is None:
            findings.append(Finding(path, 1, "write-journals",
                                    f"handler `{handler}` for {name} not "
                                    f"found in this file"))
            continue
        # One level of CommandHandlers helper following (run_query etc.).
        reach = body
        for callee in re.findall(r"\b(\w+)\s*\(", body):
            if callee not in helper_names and callee != handler:
                helper = handler_body(text, callee)
                if helper is not None:
                    reach += helper
        if "kWrite" in flags and "kInternal" not in flags:
            if not JOURNAL_CALL_RE.search(reach):
                findings.append(Finding(
                    path, 1, "write-journals",
                    f"{name} carries kWrite but neither `{handler}` nor "
                    f"its helpers journal: an acknowledged write would "
                    f"be lost on crash"))
        if "kReadOnly" in flags:
            m = JOURNAL_CALL_RE.search(body) or DURABILITY_MUT_RE.search(body)
            if m:
                findings.append(Finding(
                    path, 1, "write-journals",
                    f"{name} carries kReadOnly but `{handler}` journals "
                    f"or mutates the DurabilityManager"))
    return findings


def check_wal_frames(path, text):
    builtins = parse_builtins(text)
    if not builtins:
        return []
    findings = []
    by_name = {name: flags for name, flags, _ in builtins}
    emitted = set(JOURNAL_FRAME_RE.findall(text))
    for frame in sorted(emitted):
        flags = by_name.get(frame)
        if flags is None:
            findings.append(Finding(
                path, 1, "wal-frames",
                f"journaled frame type `{frame}` is not a registered "
                f"built-in: replay would reject it as unknown"))
        elif "kWrite" not in flags:
            findings.append(Finding(
                path, 1, "wal-frames",
                f"journaled frame type `{frame}` is not kWrite: replay "
                f"dispatch would refuse to apply it"))
    for name, flags, _ in builtins:
        if "kInternal" in flags and name not in emitted:
            findings.append(Finding(
                path, 1, "wal-frames",
                f"kInternal frame type `{name}` is never journaled: "
                f"dead replay protocol"))
    return findings


# --------------------------------------------------------------------------
# Rule: replica-apply (path-scoped to server/replication.cpp)
# --------------------------------------------------------------------------

DISPATCH_CALL_RE = re.compile(r"\bdispatch\s*\(")
REPL_JOURNAL_RE = re.compile(
    r"\bjournal(?:_batch)?\s*\(|durability_\s*->\s*append\w*\s*\(")


def check_replica_apply(path, text):
    if not path.replace("\\", "/").endswith("server/replication.cpp"):
        return []
    findings = []
    stripped = strip_comments(text)
    raw_lines = text.splitlines()
    for m in DISPATCH_CALL_RE.finditer(stripped):
        lineno = stripped.count("\n", 0, m.start()) + 1
        if allowed(raw_lines[lineno - 1], "replica-apply"):
            continue
        # Balanced-paren scan for the full argument list (calls wrap).
        depth, j = 1, m.end()
        while j < len(stripped) and depth:
            depth += {"(": 1, ")": -1}.get(stripped[j], 0)
            j += 1
        if "kReplication" not in stripped[m.end():j]:
            findings.append(Finding(
                path, lineno, "replica-apply",
                "dispatch() in the replication link must pass "
                "CommandSource::kReplication: the client path would "
                "re-journal the frame and hit the read-only gate"))
    for lineno, line in enumerate(stripped.splitlines(), 1):
        m = REPL_JOURNAL_RE.search(line)
        if not m or allowed(raw_lines[lineno - 1], "replica-apply"):
            continue
        findings.append(Finding(
            path, lineno, "replica-apply",
            f"`{m.group(0).strip()}` in the replication link: applied "
            f"frames are already journaled by the primary; journaling "
            f"them again would duplicate writes on recovery"))
    return findings


# --------------------------------------------------------------------------
# Rule: io-under-lock
# --------------------------------------------------------------------------

GUARD_RE = re.compile(
    r"util::(?:MutexLock|SharedLock|WriteLock|DualMutexLock)\s+\w+\s*"
    r"\(([^;]*)\)\s*;")
GRAPH_LOCK_ARG_RE = re.compile(r"keyspace_mu_|(?:\.|->)\s*lock\b")
BLOCKING_IO_RE = re.compile(
    r"\b(fsync|fdatasync|save_graph_file|load_graph_file|"
    r"atomic_write_file|read_file|std::[io]?fstream|std::ofstream|"
    r"std::ifstream)\b")


def check_io_under_lock(path, text):
    findings = []
    stripped = strip_comments(text)
    lines = stripped.splitlines()
    raw_lines = text.splitlines()
    for lineno, line in enumerate(lines, 1):
        m = GUARD_RE.search(line)
        if not m or not GRAPH_LOCK_ARG_RE.search(m.group(1)):
            continue
        # lint:allow(io-under-lock) on the comment line(s) immediately
        # above the guard covers the whole guarded scope.
        k = lineno - 2
        covered = False
        while k >= 0 and raw_lines[k].lstrip().startswith("//"):
            if allowed(raw_lines[k], "io-under-lock"):
                covered = True
            k -= 1
        if covered:
            continue
        # Scope: from the guard to the close of its enclosing block.
        depth = 0
        for j in range(lineno - 1, len(lines)):
            seg = lines[j] if j > lineno - 1 else lines[j][m.end():]
            for ch in seg:
                if ch == "{":
                    depth += 1
                elif ch == "}":
                    depth -= 1
            if j > lineno - 1:
                io = BLOCKING_IO_RE.search(lines[j])
                if io and not allowed(raw_lines[j], "io-under-lock"):
                    findings.append(Finding(
                        path, j + 1, "io-under-lock",
                        f"blocking I/O `{io.group(1)}` while holding the "
                        f"graph lock taken at line {lineno}"))
            if depth < 0:
                break
    return findings


# --------------------------------------------------------------------------
# Rule: mvcc-api (delta/epoch internals stay below the graph layer)
# --------------------------------------------------------------------------

MVCC_INTERNALS_RE = re.compile(
    r"\bdelta_(?:plus|minus)_\b"
    r"|\bnew\s+(?:graph::)?GraphSnapshot\b"
    r"|\bmake_(?:shared|unique)\s*<\s*(?:const\s+)?(?:graph::)?"
    r"GraphSnapshot\b"
    r"|\bGraphSnapshot\s*\(")


def check_mvcc_api(path, text):
    p = path.replace("\\", "/")
    if p.startswith("src/graphblas/") or p.startswith("src/graph/"):
        return []
    findings = []
    stripped = strip_comments(text)
    for lineno, (line, raw) in enumerate(
            zip(stripped.splitlines(), text.splitlines()), 1):
        m = MVCC_INTERNALS_RE.search(line)
        if not m or allowed(raw, "mvcc-api"):
            continue
        findings.append(Finding(
            path, lineno, "mvcc-api",
            f"`{m.group(0).strip()}` outside src/graphblas//src/graph: "
            f"delta overlays and snapshot construction are graph-layer "
            f"internals; use the snapshot-pin API (EpochManager::"
            f"try_pin/pin_or_fork/invalidate, Graph::delta_counts)"))
    return findings


# --------------------------------------------------------------------------
# mem-accounting
# --------------------------------------------------------------------------

# Files owning allocations the per-component gauges track: dropping the
# accountant calls from any of these stales GRAPH.INFO memory silently.
MEM_TRACKED_FILES = {
    "src/util/data_block.hpp",
    "src/graphblas/matrix.hpp",
    "src/exec/plan_cache.cpp",
}

MEM_DICT_INTERNALS_RE = re.compile(r"\bmem::(?:Dict|Str)\b")


def check_mem_accounting(path, text):
    p = path.replace("\\", "/")
    findings = []
    stripped = strip_comments(text)
    if p in MEM_TRACKED_FILES and "mem::accountant" not in stripped:
        findings.append(Finding(
            p, 1, "mem-accounting",
            "this file owns tracked allocations (datablock pages / CSR "
            "bodies / plan-cache entries) but never calls "
            "mem::accountant — the per-component memory gauges would "
            "silently go stale"))
    if p.startswith("src/mem/") or p.startswith("src/graph/"):
        return findings
    for lineno, (line, raw) in enumerate(
            zip(stripped.splitlines(), text.splitlines()), 1):
        m = MEM_DICT_INTERNALS_RE.search(line)
        if not m or allowed(raw, "mem-accounting"):
            continue
        findings.append(Finding(
            p, lineno, "mem-accounting",
            f"`{m.group(0)}` outside src/mem//src/graph: dictionary "
            f"handles are a property-storage internal; layers above use "
            f"graph::Value (and mem::dict_min_string_len() for the "
            f"threshold knob)"))
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

RULES = [check_raw_mutex, check_write_journals, check_wal_frames,
         check_replica_apply, check_io_under_lock, check_mvcc_api,
         check_mem_accounting]


def lint_tree(root):
    src = pathlib.Path(root) / "src"
    findings = []
    for path in sorted(src.rglob("*.[ch]pp")):
        text = path.read_text()
        rel = path.relative_to(root).as_posix()
        for rule in RULES:
            findings.extend(rule(rel, text))
    return findings


# --------------------------------------------------------------------------
# Self-test: every rule must fire on a seeded violation and stay quiet
# on the equivalent clean code.
# --------------------------------------------------------------------------

SELF_TESTS = [
    # (rule fn, expected rule name or None for clean, source text
    #  [, path]) — path defaults to selftest.cpp; path-scoped rules
    # (replica-apply) get the path they are scoped to.
    (check_raw_mutex, "raw-mutex",
     "#include <mutex>\nstd::mutex mu_;\n"),
    (check_raw_mutex, "raw-mutex",
     "std::lock_guard lk(mu_);\n"),
    (check_raw_mutex, "raw-mutex",
     "std::condition_variable_any cv_;\n"),
    (check_raw_mutex, None,
     "#include <shared_mutex>  // lint:allow(raw-mutex): adapters\n"
     "util::Mutex mu_;\nstd::shared_lock<util::SharedMutex> lk;\n"),
    (check_raw_mutex, None,
     "// std::mutex only in a comment\nconst char* s = \"std::mutex\";\n"),

    (check_write_journals, "write-journals", """
      const CommandSpec builtins[] = {
          {"GRAPH.EVIL", 2, 2, kWrite | kGraphKeyed, "x", &H::evil},
      };
      Reply CommandHandlers::evil(CommandCtx& ctx) { return ok(); }
    """),
    (check_write_journals, "write-journals", """
      const CommandSpec builtins[] = {
          {"GRAPH.PEEK", 2, 2, kReadOnly, "x", &H::peek},
      };
      Reply CommandHandlers::peek(CommandCtx& ctx) {
        ctx.server().durability_->set_wal_max_bytes(1);
        return ok();
      }
    """),
    (check_write_journals, None, """
      const CommandSpec builtins[] = {
          {"GRAPH.GOOD", 2, 2, kWrite | kGraphKeyed, "x", &H::good},
          {"GRAPH.VIEW", 2, 2, kReadOnly, "x", &H::view},
          {"GRAPH.G.P", 2, 2, kWrite | kInternal, "x", &H::gp},
      };
      Reply CommandHandlers::good(CommandCtx& ctx) { return helper(ctx); }
      Reply CommandHandlers::helper(CommandCtx& ctx) {
        ctx.journal({"GRAPH.G.P", ctx.key()});
        return ok();
      }
      Reply CommandHandlers::view(CommandCtx& ctx) { return ok(); }
      Reply CommandHandlers::gp(CommandCtx& ctx) { return ok(); }
    """),

    (check_wal_frames, "wal-frames", """
      const CommandSpec builtins[] = {
          {"GRAPH.SET", 2, 2, kWrite, "x", &H::set},
      };
      Reply CommandHandlers::set(CommandCtx& ctx) {
        ctx.journal({"GRAPH.TYPO", ctx.key()});
        return ok();
      }
    """),
    (check_wal_frames, "wal-frames", """
      const CommandSpec builtins[] = {
          {"GRAPH.SET", 2, 2, kWrite, "x", &H::set},
          {"GRAPH.DEAD.FRAME", 2, 2, kWrite | kInternal, "x", &H::dead},
      };
      Reply CommandHandlers::set(CommandCtx& ctx) {
        ctx.journal({"GRAPH.SET", ctx.key()});
        return ok();
      }
      Reply CommandHandlers::dead(CommandCtx& ctx) { return ok(); }
    """),
    (check_wal_frames, None, """
      const CommandSpec builtins[] = {
          {"GRAPH.SET", 2, 2, kWrite, "x", &H::set},
      };
      Reply CommandHandlers::set(CommandCtx& ctx) {
        ctx.journal({"GRAPH.SET", ctx.key()});
        return ok();
      }
    """),

    (check_replica_apply, "replica-apply", """
      void ReplicationClient::apply_frame(const std::string& blob) {
        srv_.dispatch(argv);
      }
    """, "src/server/replication.cpp"),
    (check_replica_apply, "replica-apply", """
      void ReplicationClient::apply_frame(const std::string& blob) {
        srv_.dispatch(argv, CommandSource::kReplication);
        srv_.durability_->append(argv);
      }
    """, "src/server/replication.cpp"),
    (check_replica_apply, "replica-apply", """
      void ReplicationClient::apply_frame(CommandCtx& ctx) {
        ctx.journal(ctx.argv());
      }
    """, "src/server/replication.cpp"),
    (check_replica_apply, None, """
      void ReplicationClient::apply_frame(const std::string& blob) {
        rdbuf_.append(buf, got);  // a string append, not the WAL's
        srv_.dispatch(argv,
                      CommandSource::kReplication);
      }
    """, "src/server/replication.cpp"),
    (check_replica_apply, None, """
      // The rule is scoped: client-path dispatches elsewhere are fine.
      void Server::submit(std::vector<std::string> argv) {
        dispatch(argv);
      }
    """, "src/server/server.cpp"),

    (check_io_under_lock, "io-under-lock", """
      void f(GraphEntry& e) {
        util::SharedLock lk(e.lock);
        graph::save_graph_file(e.graph, path);
      }
    """),
    (check_io_under_lock, "io-under-lock", """
      void f(Server& srv) {
        util::MutexLock lk(srv.keyspace_mu_);
        ::fdatasync(fd);
      }
    """),
    (check_io_under_lock, None, """
      void f(GraphEntry& e) {
        {
          util::SharedLock lk(e.lock);
          e.graph.flush();
        }
        graph::save_graph_file(e.graph, path);  // lock dropped above
      }
    """),
    (check_io_under_lock, None, """
      void f(GraphEntry& e) {
        // lint:allow(io-under-lock): snapshot protocol
        util::SharedLock lk(e.lock);
        graph::save_graph_file(e.graph, path);
      }
    """),
    (check_io_under_lock, None, """
      void f(WalWriter& w) {
        util::MutexLock lk(mu_);   // the WAL's own mutex: exempt
        ::fdatasync(fd_);
      }
    """),

    (check_mvcc_api, "mvcc-api", """
      void peek(graph::Graph& g) {
        auto n = g.delta_plus_.size();
      }
    """, "src/server/evil.cpp"),
    (check_mvcc_api, "mvcc-api", """
      auto snap = std::make_shared<graph::GraphSnapshot>(
          g.fork(), 0, 0, nullptr);
    """, "src/exec/evil.cpp"),
    (check_mvcc_api, None, """
      void good(GraphEntry& ge) {
        auto snap = ge.epochs.try_pin();           // sanctioned API
        const auto [plus, minus] = g.delta_counts();
        ge.epochs.invalidate();
      }
    """, "src/server/good.cpp"),
    (check_mvcc_api, None, """
      // The rule is scoped: the graph layer owns these members.
      void Matrix::fold() { delta_plus_.clear(); }
    """, "src/graphblas/matrix.hpp"),

    (check_mem_accounting, "mem-accounting", """
      struct Page { Item items[256]; };  // allocates, never accounts
    """, "src/util/data_block.hpp"),
    (check_mem_accounting, None, """
      struct Page {
        Page() { mem::accountant().add(mem::Component::kProperties, 1); }
      };
    """, "src/util/data_block.hpp"),
    (check_mem_accounting, "mem-accounting", """
      void peek() { mem::Str h = mem::Dict::global().intern("x"); }
    """, "src/server/evil.cpp"),
    (check_mem_accounting, None, """
      void knob() { mem::set_dict_min_string_len(32); }
      void gauge() { auto b = mem::accountant().total(); }
    """, "src/server/command.cpp"),
    (check_mem_accounting, None, """
      // The dictionary layer itself obviously names its own types.
      mem::Str Dict::intern(std::string_view s);
    """, "src/mem/dict.cpp"),
]


def self_test():
    failures = 0
    for i, case in enumerate(SELF_TESTS):
        rule, expect, text = case[:3]
        path = case[3] if len(case) > 3 else "selftest.cpp"
        found = rule(path, text)
        if expect is None and found:
            print(f"self-test {i} ({rule.__name__}): expected clean, got:"
                  f" {found[0]}", file=sys.stderr)
            failures += 1
        elif expect is not None and not any(f.rule == expect for f in found):
            print(f"self-test {i} ({rule.__name__}): expected a {expect} "
                  f"finding, got none", file=sys.stderr)
            failures += 1
    if failures:
        return 1
    print(f"lint_invariants self-test: {len(SELF_TESTS)} cases pass "
          f"({len(RULES)} rules each proven to fire and to stay quiet)")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--root", default=".",
                    help="repository root (containing src/)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the rule self-tests instead of linting")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    findings = lint_tree(args.root)
    for f in findings:
        print(f, file=sys.stderr)
    if findings:
        print(f"lint_invariants: {len(findings)} violation(s)",
              file=sys.stderr)
        return 1
    print("lint_invariants: src/ clean (raw-mutex, write-journals, "
          "wal-frames, replica-apply, io-under-lock, mvcc-api, "
          "mem-accounting)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Docs drift gate: every repo file path and every GRAPH.* command named
in the markdown docs must actually exist.

Scans README.md and docs/*.md for

  * file references — tokens like ``src/graph/snapshot.hpp`` (any
    src/tests/ci/docs/bench path with a source/script/doc extension)
    must name a file on disk, so refactors cannot silently strand the
    prose; glob patterns (``fail_*.cpp``) are ignored;
  * command references — ``GRAPH.FOO[.BAR]`` tokens must be registered
    commands (checked against ``resp_server --dump-commands``, the same
    registry dump ci/check_command_docs.py gates the README table
    against).

Usage:
  check_docs_links.py --root . --binary build/examples/resp_server
  check_docs_links.py --root . --dump commands.md
  check_docs_links.py --root .            # paths only, skip commands
"""

import argparse
import glob
import os
import re
import subprocess
import sys

# Repo-relative file tokens with a checkable extension.  The character
# class excludes '*', so glob examples in the prose never match.
PATH_RE = re.compile(
    r"\b(?:src|tests|ci|docs|bench)/[\w./-]*\.(?:hpp|cpp|py|md|resp|yml)\b")

# GRAPH.QUERY, GRAPH.RESTORE.PAYLOAD, ... — a trailing sentence period
# is not captured (every dot must be followed by another name segment).
COMMAND_RE = re.compile(r"\bGRAPH\.[A-Z_]+(?:\.[A-Z_]+)*\b")


def doc_files(root):
    files = [os.path.join(root, "README.md")]
    files += sorted(glob.glob(os.path.join(root, "docs", "*.md")))
    return [f for f in files if os.path.isfile(f)]


def registry_names(args):
    """Lower-case command names from the --dump-commands table."""
    if args.dump:
        with open(args.dump) as f:
            dump = f.read()
    elif args.binary:
        dump = subprocess.run([args.binary, "--dump-commands"], check=True,
                              capture_output=True, text=True).stdout
    else:
        return None
    names = set()
    for line in dump.splitlines():
        m = re.match(r"\|\s*`([^`]+)`\s*\|", line)
        if m:
            names.add(m.group(1).lower())
    if not names:
        sys.exit("check_docs_links: no command names in the registry dump")
    return names


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--root", default=".", help="repository root")
    group = ap.add_mutually_exclusive_group()
    group.add_argument("--dump", help="file holding --dump-commands output")
    group.add_argument("--binary", help="resp_server binary to run")
    args = ap.parse_args()

    commands = registry_names(args)
    problems = []
    paths_checked = commands_checked = 0

    for doc in doc_files(args.root):
        rel_doc = os.path.relpath(doc, args.root)
        with open(doc) as f:
            lines = f.read().splitlines()
        for lineno, line in enumerate(lines, 1):
            for m in PATH_RE.finditer(line):
                paths_checked += 1
                if not os.path.isfile(os.path.join(args.root, m.group(0))):
                    problems.append(f"{rel_doc}:{lineno}: missing file "
                                    f"{m.group(0)}")
            if commands is None:
                continue
            for m in COMMAND_RE.finditer(line):
                commands_checked += 1
                if m.group(0).lower() not in commands:
                    problems.append(f"{rel_doc}:{lineno}: unknown command "
                                    f"{m.group(0)}")

    if problems:
        print(f"check_docs_links: {len(problems)} stale reference(s):",
              file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1

    suffix = (f", {commands_checked} command refs against the registry"
              if commands is not None else " (registry check skipped)")
    print(f"check_docs_links: {len(doc_files(args.root))} docs clean — "
          f"{paths_checked} path refs{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Bench regression gate: diff a candidate BENCH_*.json against the
committed baseline and flag rows that regressed beyond a threshold.

Usage:
  bench_gate.py --baseline BENCH_2.json --candidate BENCH_3.json
                [--threshold-pct 30] [--mode warn|fail]
                [--summary $GITHUB_STEP_SUMMARY]

Rows are matched by every non-metric field (bench, workload, engine,
k, workers, name, ...).  Two metrics are understood:
  * mean_ms       lower is better  (latency rows)
  * qps           higher is better (throughput rows)

Key rows — the ones that can fail the gate — are all matched rows
EXCEPT the durability fsync sweep (rows with a `policy` field): fsync
latency on shared CI runners is dominated by the host's storage stack,
so those rows are report-only.

In --mode fail the script exits 1 if any key row regressed more than
the threshold; in --mode warn it always exits 0.  Either way it prints
(and optionally writes to the GitHub step summary) a markdown table of
every regression and the biggest improvements.
"""

import argparse
import json
import sys

METRIC_FIELDS = {"mean_ms", "p50_ms", "p95_ms", "p99_ms", "qps",
                 "writes_per_s", "timeouts", "checksum", "seeds", "writes",
                 "eps", "total_ms", "edges", "nodes", "total_bytes",
                 "dictionary_bytes", "bytes_per_node", "bytes_per_edge"}


def row_key(row):
    return tuple(sorted((k, str(v)) for k, v in row.items()
                        if k not in METRIC_FIELDS))


def load_rows(path):
    with open(path) as f:
        data = json.load(f)
    rows = {}
    for row in data.get("rows", []):
        rows[row_key(row)] = row
    return rows


def describe(row):
    parts = [str(row.get("bench", "?"))]
    for field in ("workload", "engine", "name", "transport", "policy",
                  "mode", "wal"):
        if field in row:
            parts.append(str(row[field]))
    for field in ("k", "workers"):
        if field in row:
            parts.append(f"{field}={row[field]}")
    return " / ".join(parts)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--candidate", required=True)
    ap.add_argument("--threshold-pct", type=float, default=30.0)
    ap.add_argument("--mode", choices=("warn", "fail"), default="warn")
    ap.add_argument("--summary", default=None,
                    help="file to append the markdown table to")
    args = ap.parse_args()

    base = load_rows(args.baseline)
    cand = load_rows(args.candidate)

    results = []  # (delta_pct, gated, row, metric, base_v, cand_v)
    matched = 0
    for key, row in cand.items():
        if key not in base:
            continue
        brow = base[key]
        for metric, higher_better in (("mean_ms", False), ("qps", True),
                                      ("writes_per_s", True), ("eps", True),
                                      ("bytes_per_node", False),
                                      ("bytes_per_edge", False)):
            if metric not in row or metric not in brow:
                continue
            bv, cv = float(brow[metric]), float(row[metric])
            if bv <= 0:
                continue
            matched += 1
            # delta > 0 means regression, in percent of the baseline.
            delta = (cv - bv) / bv * 100.0
            if higher_better:
                delta = -delta
            # Policy-sweep rows and memory-footprint rows are report-only:
            # the former are dominated by sleep scheduling, the latter are
            # new this cycle and tracked until a baseline settles.
            gated = "policy" not in row and row.get("bench") != "memory"
            results.append((delta, gated, row, metric, bv, cv))

    regressions = [r for r in results if r[0] > args.threshold_pct]
    gated_regressions = [r for r in regressions if r[1]]
    improvements = sorted((r for r in results if r[0] < -args.threshold_pct),
                          key=lambda r: r[0])

    lines = []
    lines.append(f"## Bench regression gate "
                 f"({args.candidate} vs {args.baseline})")
    lines.append("")
    lines.append(f"{matched} comparable metrics, threshold "
                 f"{args.threshold_pct:.0f}%, mode `{args.mode}` — "
                 f"**{len(gated_regressions)} gating regression(s)**, "
                 f"{len(regressions) - len(gated_regressions)} "
                 f"report-only, {len(improvements)} improvement(s).")
    lines.append("")
    if regressions or improvements:
        lines.append("| row | metric | baseline | candidate | delta | gate |")
        lines.append("|---|---|---:|---:|---:|---|")
        for delta, gated, row, metric, bv, cv in sorted(
                regressions, key=lambda r: -r[0]) + improvements:
            kind = "regression" if delta > 0 else "improvement"
            gate = "FAIL" if (delta > 0 and gated and args.mode == "fail") \
                else ("report-only" if delta > 0 and not gated else kind)
            lines.append(f"| {describe(row)} | {metric} | {bv:.4g} | "
                         f"{cv:.4g} | {delta:+.1f}% | {gate} |")
    else:
        lines.append("No row moved beyond the threshold.")
    text = "\n".join(lines)
    print(text)
    if args.summary:
        with open(args.summary, "a") as f:
            f.write(text + "\n")

    if matched == 0:
        # A silent shape mismatch would disable the gate forever: fail.
        print("bench_gate: no comparable rows "
              "(baseline/candidate shape mismatch?)", file=sys.stderr)
        return 1 if args.mode == "fail" else 0
    if args.mode == "fail" and gated_regressions:
        print(f"bench_gate: {len(gated_regressions)} key row(s) regressed "
              f"more than {args.threshold_pct:.0f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

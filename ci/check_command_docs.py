#!/usr/bin/env python3
"""Command-reference drift gate: the README's command table must match
the registry dump (`resp_server --dump-commands`) byte for byte.

The table in README.md lives between these markers:

    <!-- BEGIN COMMAND TABLE ... -->
    | Command | Arity | Flags | Summary |
    ...
    <!-- END COMMAND TABLE -->

Usage:
  check_command_docs.py --readme README.md --dump commands.md
  check_command_docs.py --readme README.md --binary build/examples/resp_server

Exit 1 (with a unified diff) when the README copy is stale — regenerate
it with `resp_server --dump-commands`.
"""

import argparse
import difflib
import subprocess
import sys

BEGIN_MARKER = "<!-- BEGIN COMMAND TABLE"
END_MARKER = "<!-- END COMMAND TABLE"


def readme_table(path):
    with open(path) as f:
        lines = f.read().splitlines()
    begin = end = None
    for i, line in enumerate(lines):
        if line.startswith(BEGIN_MARKER):
            begin = i
        elif line.startswith(END_MARKER):
            end = i
    if begin is None or end is None or end <= begin:
        sys.exit(f"{path}: command-table markers missing or out of order "
                 f"({BEGIN_MARKER!r} ... {END_MARKER!r})")
    return [l for l in lines[begin + 1:end] if l.strip()]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--readme", required=True)
    group = ap.add_mutually_exclusive_group(required=True)
    group.add_argument("--dump", help="file holding --dump-commands output")
    group.add_argument("--binary", help="resp_server binary to run")
    args = ap.parse_args()

    if args.dump:
        with open(args.dump) as f:
            dump = f.read()
    else:
        dump = subprocess.run([args.binary, "--dump-commands"], check=True,
                              capture_output=True, text=True).stdout
    expected = [l for l in dump.splitlines() if l.strip()]
    actual = readme_table(args.readme)

    if actual == expected:
        print(f"{args.readme}: command table matches the registry "
              f"({len(expected) - 2} commands)")
        return 0

    print(f"{args.readme}: command table is OUT OF SYNC with the registry.",
          file=sys.stderr)
    print("Regenerate it: resp_server --dump-commands\n", file=sys.stderr)
    for line in difflib.unified_diff(actual, expected,
                                     fromfile="README.md (committed)",
                                     tofile="registry (--dump-commands)",
                                     lineterm=""):
        print(line, file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())

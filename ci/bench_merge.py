#!/usr/bin/env python3
"""Merge bench driver outputs into one BENCH_<pr>.json artifact.

Usage: bench_merge.py --pr N --rows rows.jsonl [--gbench NAME=FILE ...]
                      --out BENCH_N.json

`rows.jsonl` holds one flat JSON object per line (the hand-rolled
drivers' --json output).  Each --gbench FILE is a google-benchmark
--benchmark_format=json report, flattened into the same row shape with
`bench` set to NAME and times normalized to milliseconds.
"""

import argparse
import json


def flatten_gbench(name, path):
    with open(path) as f:
        data = json.load(f)
    rows = []
    for b in data.get("benchmarks", []):
        ms = b["real_time"]
        unit = b.get("time_unit", "ns")
        if unit == "ns":
            ms /= 1e6
        elif unit == "us":
            ms /= 1e3
        elif unit == "s":
            ms *= 1e3
        rows.append({"bench": name, "name": b["name"], "mean_ms": ms})
    return rows


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--pr", type=int, required=True)
    ap.add_argument("--mode", default="quick-ci")
    ap.add_argument("--rows", required=True)
    ap.add_argument("--gbench", action="append", default=[],
                    metavar="NAME=FILE")
    ap.add_argument("--out", required=True)
    args = ap.parse_args()

    rows = []
    with open(args.rows) as f:
        for line in f:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    for spec in args.gbench:
        name, _, path = spec.partition("=")
        rows.extend(flatten_gbench(name, path))

    out = {"pr": args.pr, "mode": args.mode, "rows": rows}
    with open(args.out, "w") as f:
        json.dump(out, f, indent=1)
    print(f"{len(rows)} rows merged into {args.out}")


if __name__ == "__main__":
    main()

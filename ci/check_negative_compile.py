#!/usr/bin/env python3
"""Negative-compilation harness for the thread-safety annotations.

Each tests/static_analysis/*.cpp is compiled with
`-fsyntax-only -Wthread-safety -Werror=thread-safety`:

  * `fail_*.cpp` must NOT compile, and the diagnostic must be a
    -Wthread-safety* one — these prove the annotations in util/sync.hpp
    actually reject broken locking.  If a fail case starts compiling,
    someone disabled the capability attributes (e.g. broke the
    __has_attribute gate) and the whole analysis is silently off: this
    is the revert-proof guard for the -Werror=thread-safety CI lane.
  * `pass_*.cpp` must compile clean — the positive control proving the
    harness isn't rejecting valid code.

Clang only: the RG_* macros expand to nothing elsewhere, so under GCC
every case would "compile" and the harness would prove nothing.  The
ctest registration gates on CMAKE_CXX_COMPILER_ID MATCHES Clang.

Usage:
  check_negative_compile.py --compiler clang++ --include src \
      --cases tests/static_analysis
"""

import argparse
import pathlib
import subprocess
import sys

FLAGS = ["-std=c++20", "-fsyntax-only", "-Wthread-safety",
         "-Werror=thread-safety"]


def compile_case(compiler, include, path):
    """(ok, stderr) for one translation unit."""
    cmd = [compiler] + FLAGS + ["-I", include, str(path)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode == 0, proc.stderr


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--compiler", required=True, help="clang++ to use")
    ap.add_argument("--include", required=True, help="src/ include root")
    ap.add_argument("--cases", required=True,
                    help="directory of fail_*.cpp / pass_*.cpp cases")
    args = ap.parse_args()

    cases = sorted(pathlib.Path(args.cases).glob("*.cpp"))
    if not cases:
        sys.exit(f"{args.cases}: no *.cpp cases found")

    failures = 0
    for path in cases:
        ok, stderr = compile_case(args.compiler, args.include, path)
        expect_fail = path.name.startswith("fail_")
        if expect_fail and ok:
            print(f"FAIL {path.name}: compiled, but must be rejected — "
                  f"the thread-safety annotations are not firing",
                  file=sys.stderr)
            failures += 1
        elif expect_fail and "thread-safety" not in stderr:
            print(f"FAIL {path.name}: rejected, but not by "
                  f"-Wthread-safety:\n{stderr}", file=sys.stderr)
            failures += 1
        elif not expect_fail and not ok:
            print(f"FAIL {path.name}: positive control must compile "
                  f"clean:\n{stderr}", file=sys.stderr)
            failures += 1
        else:
            verdict = "rejected (as required)" if expect_fail else "clean"
            print(f"ok   {path.name}: {verdict}")

    if failures:
        print(f"{failures} case(s) failed", file=sys.stderr)
        return 1
    print(f"negative-compile harness: {len(cases)} cases pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())

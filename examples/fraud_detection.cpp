// Fraud detection — another use case from the paper's introduction.
// Builds a synthetic payment network with injected fraud rings (cycles
// of mule accounts) and finds them two ways:
//
//   1. Cypher cycle queries (ring membership via closed triangles),
//   2. weighted shortest-path exposure from flagged accounts (min-plus
//      SSSP over the GraphBLAS layer).
//
//   $ ./fraud_detection [accounts] [payments]
#include <cstdlib>
#include <iostream>

#include "algo/sssp.hpp"
#include "datagen/generators.hpp"
#include "exec/query.hpp"
#include "graph/graph.hpp"
#include "util/random.hpp"

int main(int argc, char** argv) {
  using namespace rg;
  const gb::Index n = argc > 1 ? std::atoll(argv[1]) : 2000;
  const std::size_t m = argc > 2 ? std::atoll(argv[2]) : 10000;

  // Background payment traffic.
  util::Pcg32 rng(2024);
  graph::Graph g(n);
  const auto account = g.schema().add_label("Account");
  const auto flagged = g.schema().add_label("Flagged");
  const auto pays = g.schema().add_reltype("PAYS");
  const auto amount = g.schema().add_attr("amount");

  for (gb::Index v = 0; v < n; ++v) g.add_node({account});

  auto pay = [&](gb::Index from, gb::Index to, double amt) {
    graph::AttributeSet attrs;
    attrs.set(amount, graph::Value(amt));
    g.add_edge(pays, from, to, std::move(attrs));
  };
  for (std::size_t k = 0; k < m; ++k) {
    const gb::Index u = rng.bounded64(n);
    gb::Index v = rng.bounded64(n);
    if (v == u) v = (v + 1) % n;
    pay(u, v, 10.0 + rng.uniform() * 490.0);
  }

  // Inject 5 fraud rings: cycles of 3-5 mule accounts moving round sums.
  std::cout << "Injecting fraud rings at accounts: ";
  std::vector<gb::Index> ring_starts;
  for (int ring = 0; ring < 5; ++ring) {
    const std::size_t len = 3 + (ring % 2);  // alternating 3- and 4-rings
    std::vector<gb::Index> members;
    for (std::size_t i = 0; i < len; ++i) members.push_back(rng.bounded64(n));
    for (std::size_t i = 0; i < len; ++i)
      pay(members[i], members[(i + 1) % len], 9000.0);
    ring_starts.push_back(members[0]);
    g.add_node_label(members[0], flagged);
    std::cout << members[0] << " ";
  }
  std::cout << "\n";
  g.flush();

  // --- 1. Ring detection via Cypher: cycles of large payments ---------------
  std::cout << "\n== Suspicious 3-cycles of >= $5000 payments ==\n";
  auto rs = exec::query(
      g, "MATCH (a:Account)-[p1:PAYS]->(b:Account)-[p2:PAYS]->(c:Account)"
         "-[p3:PAYS]->(a) "
         "WHERE p1.amount >= 5000 AND p2.amount >= 5000 AND p3.amount >= 5000 "
         "AND id(a) < id(b) AND id(a) < id(c) "  // dedupe rotations

         "RETURN id(a), id(b), id(c) LIMIT 20");
  std::cout << rs.to_string();
  std::cout << "(" << rs.row_count() << " suspicious cycles)\n";

  // --- 2. Exposure: how close is each account to a flagged one? -------------
  std::cout << "\n== Accounts within 2 payments of a flagged account ==\n";
  rs = exec::query(
      g, "MATCH (f:Flagged)-[:PAYS*1..2]->(x:Account) "
         "RETURN count(DISTINCT x) AS exposed");
  std::cout << rs.to_string();

  // --- 3. Weighted shortest exposure path (min-plus SSSP) -------------------
  std::cout << "\n== Shortest weighted path from first flagged account ==\n";
  gb::Matrix<double> W(g.capacity(), g.capacity());
  g.for_each_edge([&](graph::EdgeId, const graph::EdgeEntity& e) {
    const auto amt = e.attrs.get(amount);
    // Use 1/amount as distance: heavier flows = tighter links.
    const double w = amt.has_value() ? 1.0 / amt->to_double() : 1.0;
    const auto existing = W.extract_element(e.src, e.dst);
    if (!existing.has_value() || *existing > w) W.set_element(e.src, e.dst, w);
  });
  const auto dist = algo::sssp(W, ring_starts[0]);
  std::size_t reachable = 0;
  for (double d : dist)
    if (d < algo::kInfDist) ++reachable;
  std::cout << "account " << ring_starts[0] << " reaches " << reachable
            << " accounts; ring neighbours sit at the smallest distances\n";
  return 0;
}

// Cohesive-community extraction with k-truss — demonstrating the second
// kernel of the paper's Davis (HPEC 2018) citation on a social graph
// with planted communities.
//
// Plants dense cliques inside background noise, then peels the graph
// with increasing k until only the planted cores survive; reports the
// trussness and the members of the surviving components.
//
//   $ ./ktruss_communities [background_nodes] [noise_edges]
#include <cstdlib>
#include <iostream>
#include <map>

#include "algo/components.hpp"
#include "algo/ktruss.hpp"
#include "algo/triangle_count.hpp"
#include "datagen/generators.hpp"
#include "util/random.hpp"

int main(int argc, char** argv) {
  using namespace rg;
  const gb::Index n = argc > 1 ? std::atoll(argv[1]) : 600;
  const std::size_t noise = argc > 2 ? std::atoll(argv[2]) : 2500;

  util::Pcg32 rng(404);
  datagen::EdgeList el;
  el.nvertices = n;

  // Background noise.
  for (std::size_t e = 0; e < noise; ++e) {
    const gb::Index u = rng.bounded64(n);
    gb::Index v = rng.bounded64(n);
    if (u == v) v = (v + 1) % n;
    el.edges.emplace_back(u, v);
  }

  // Planted communities: cliques of sizes 6, 8, 10.
  std::map<gb::Index, int> planted;  // member -> community id
  int community = 0;
  for (const std::size_t size : {6u, 8u, 10u}) {
    std::vector<gb::Index> members;
    for (std::size_t i = 0; i < size; ++i) {
      const gb::Index v = rng.bounded64(n);
      members.push_back(v);
      planted[v] = community;
    }
    for (const auto a : members)
      for (const auto b : members)
        if (a != b) el.edges.emplace_back(a, b);
    ++community;
  }

  const auto S = algo::symmetrize(datagen::to_matrix(el));
  std::cout << "graph: " << datagen::describe(el) << "\n";
  std::cout << "triangles: " << algo::triangle_count(S) << "\n\n";

  // Peel with increasing k.
  std::cout << "k-truss peeling:\n";
  for (unsigned k = 3; k <= 12; ++k) {
    const auto t = algo::ktruss(S, k);
    if (t.nedges == 0) {
      std::cout << "  k=" << k << ": empty — trussness is " << (k - 1) << "\n";
      break;
    }
    // Count surviving vertices.
    std::size_t verts = 0;
    for (gb::Index i = 0; i < t.truss.nrows(); ++i)
      verts += t.truss.row_degree(i) > 0;
    std::cout << "  k=" << k << ": " << t.nedges / 2 << " edges, " << verts
              << " vertices, " << t.iterations << " peel rounds\n";
  }

  // The 7-truss isolates the cliques of size >= 8 (clique of size s is an
  // s-truss).  Group survivors by connected component.
  const auto t7 = algo::ktruss(S, 7);
  gb::Matrix<gb::Bool> survivors(S.nrows(), S.ncols());
  {
    std::vector<gb::Index> r, c;
    std::vector<std::uint64_t> v;
    t7.truss.extract_tuples(r, c, v);
    std::vector<gb::Bool> ones(r.size(), 1);
    survivors.build(r, c, ones);
  }
  const auto labels = algo::connected_components(survivors);
  std::map<gb::Index, std::vector<gb::Index>> comps;
  for (gb::Index v = 0; v < survivors.nrows(); ++v)
    if (survivors.row_degree(v) > 0) comps[labels[v]].push_back(v);

  std::cout << "\n7-truss communities (planted cliques of size >= 8):\n";
  for (const auto& [root, members] : comps) {
    std::cout << "  component@" << root << ":";
    for (const auto m : members) {
      std::cout << " " << m;
      const auto it = planted.find(m);
      if (it != planted.end()) std::cout << "(c" << it->second << ")";
    }
    std::cout << "\n";
  }
  return 0;
}

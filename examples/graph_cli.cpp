// graph_cli — an interactive redis-cli-style shell for the graph server.
//
// Reads commands from stdin (or a script via `graph_cli < script.txt`),
// dispatches them through the same command table a Redis client would
// hit, and prints human-readable tables (or raw RESP with --resp).
//
//   $ ./graph_cli
//   graph> GRAPH.QUERY social "CREATE (:Person {name:'Ann'})"
//   graph> GRAPH.QUERY social "MATCH (n) RETURN n.name"
//   graph> GRAPH.SAVE social /tmp/social.rgr
//   graph> GRAPH.CONFIG GET THREAD_COUNT
//
// Extra shell-only helpers: HELP, LOADBENCH <key> <scale> <edgefactor>
// (bulk-loads a Graph500 graph for experimentation), EXIT.
#include <cstring>
#include <iostream>
#include <string>

#include "datagen/generators.hpp"
#include "cypher/lexer.hpp"
#include "server/command.hpp"
#include "server/server.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

void print_help() {
  // The command listing comes straight from the registry, so the shell
  // never drifts from what the server actually dispatches.
  std::cout << "commands (from the registry; see also COMMAND DOCS):\n";
  for (const auto* spec : rg::server::CommandRegistry::instance().all()) {
    if (spec->flags & rg::server::kInternal) continue;
    std::string name(spec->name);
    name.resize(24, ' ');
    std::cout << "  " << name << std::string(spec->summary) << "\n";
  }
  std::cout <<
      "shell helpers:\n"
      "  LOADBENCH <key> <scale> <ef>      bulk-load a Graph500 graph\n"
      "  HELP | EXIT\n";
}

bool loadbench(rg::server::Server& server,
               const std::vector<std::string>& argv) {
  if (argv.size() < 4) {
    std::cout << "usage: LOADBENCH <key> <scale> <edgefactor>\n";
    return true;
  }
  const unsigned scale = static_cast<unsigned>(std::stoul(argv[2]));
  const unsigned ef = static_cast<unsigned>(std::stoul(argv[3]));
  rg::util::Stopwatch sw;
  const auto el = rg::datagen::graph500(scale, ef, 42);
  auto& g = server.graph_for_testing(argv[1]);
  const auto label = g.schema().add_label("Node");
  const auto rel = g.schema().add_reltype("E");
  for (rg::gb::Index v = 0; v < el.nvertices; ++v) g.add_node({label});
  for (const auto& [u, v] : el.edges) g.add_edge(rel, u, v);
  g.flush();
  std::cout << "loaded " << rg::datagen::describe(el) << " into '" << argv[1]
            << "' in " << rg::util::fmt_double(sw.millis(), 1) << " ms\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t threads = 4;
  bool raw_resp = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = std::stoul(argv[++i]);
    else if (std::strcmp(argv[i], "--resp") == 0)
      raw_resp = true;
  }

  rg::server::Server server(threads);
  const bool tty = true;  // prompt unconditionally; harmless when piped

  std::string line;
  while ((tty && (std::cout << "graph> " << std::flush)),
         std::getline(std::cin, line)) {
    const auto args = rg::server::split_command_line(line);
    if (args.empty()) continue;
    const auto& cmd = args[0];
    if (rg::cypher::keyword_eq(cmd, "EXIT") ||
        rg::cypher::keyword_eq(cmd, "QUIT"))
      break;
    if (rg::cypher::keyword_eq(cmd, "HELP")) {
      print_help();
      continue;
    }
    if (rg::cypher::keyword_eq(cmd, "LOADBENCH")) {
      loadbench(server, args);
      continue;
    }

    rg::util::Stopwatch sw;
    const auto reply = server.execute(args);
    const double ms = sw.millis();

    if (raw_resp) {
      std::cout << reply.to_resp();
      continue;
    }
    using Kind = rg::server::Reply::Kind;
    switch (reply.kind) {
      case Kind::kStatus:
        std::cout << reply.text << "\n";
        break;
      case Kind::kError:
        std::cout << "(error) " << reply.text << "\n";
        break;
      case Kind::kText:
        std::cout << reply.text;
        break;
      case Kind::kResult:
        std::cout << reply.result.to_string();
        std::cout << "(" << reply.result.row_count() << " rows, "
                  << rg::util::fmt_double(ms, 3) << " ms)\n";
        break;
    }
  }
  return 0;
}

// Graph analytics on the GraphBLAS layer directly: the LAGraph-style
// kernels the paper lists as future work (GraphChallenge / LDBC):
// BFS, PageRank, triangle counting and connected components on a
// Graph500 Kronecker graph — no Cypher involved, pure rg::gb + rg::algo.
//
//   $ ./graph_analytics [scale] [edgefactor]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "algo/algorithms.hpp"
#include "datagen/generators.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace rg;
  const unsigned scale = argc > 1 ? std::atoi(argv[1]) : 14;
  const unsigned edgefactor = argc > 2 ? std::atoi(argv[2]) : 16;

  util::Stopwatch total;
  std::cout << "Graph500 Kronecker graph, scale " << scale << ", edgefactor "
            << edgefactor << "\n";
  util::Stopwatch sw;
  const auto el = datagen::graph500(scale, edgefactor, /*seed=*/42);
  std::cout << "  generate: " << datagen::describe(el) << "  ("
            << util::fmt_double(sw.millis(), 1) << " ms)\n";

  sw.reset();
  const auto A = datagen::to_matrix(el);
  const auto AT = gb::transposed(A);
  std::cout << "  build CSR + transpose: " << A.nvals() << " entries  ("
            << util::fmt_double(sw.millis(), 1) << " ms)\n";

  // BFS from the highest-degree vertex.
  gb::Index root = 0, best = 0;
  for (gb::Index i = 0; i < A.nrows(); ++i) {
    if (A.row_degree(i) > best) {
      best = A.row_degree(i);
      root = i;
    }
  }
  sw.reset();
  const auto levels = algo::bfs_levels(A, AT, root);
  std::int64_t max_level = 0;
  std::size_t reached = 0;
  for (auto l : levels) {
    if (l >= 0) {
      ++reached;
      max_level = std::max(max_level, l);
    }
  }
  std::cout << "\nBFS from hub " << root << " (deg " << best << "): reached "
            << reached << " vertices, eccentricity " << max_level << "  ("
            << util::fmt_double(sw.millis(), 1) << " ms)\n";

  // PageRank.
  sw.reset();
  const auto pr = algo::pagerank(A);
  std::vector<gb::Index> by_rank(A.nrows());
  for (gb::Index i = 0; i < A.nrows(); ++i) by_rank[i] = i;
  std::partial_sort(by_rank.begin(), by_rank.begin() + 5, by_rank.end(),
                    [&](gb::Index a, gb::Index b) {
                      return pr.rank[a] > pr.rank[b];
                    });
  std::cout << "PageRank (" << pr.iterations << " iters, "
            << util::fmt_double(sw.millis(), 1) << " ms) top-5:";
  for (int i = 0; i < 5; ++i)
    std::cout << "  v" << by_rank[i] << "="
              << util::fmt_double(pr.rank[by_rank[i]], 6);
  std::cout << "\n";

  // Triangle counting (GraphChallenge static kernel).
  sw.reset();
  const auto S = algo::symmetrize(A);
  const auto tris = algo::triangle_count(S);
  std::cout << "Triangles: " << tris << "  ("
            << util::fmt_double(sw.millis(), 1) << " ms)\n";

  // Connected components on the undirected view.
  sw.reset();
  const auto labels = algo::connected_components(S);
  std::cout << "Connected components: " << algo::count_components(labels)
            << "  (" << util::fmt_double(sw.millis(), 1) << " ms)\n";

  std::cout << "\nTotal: " << util::fmt_double(total.millis(), 1) << " ms\n";
  return 0;
}

// resp_client — a minimal RESP socket client for the networked server.
//
// One-shot:     ./resp_client [host] <port> <command> [args...]
// Interactive:  ./resp_client [host] <port>     (reads commands from stdin)
//
//   $ ./resp_client 6380 PING
//   $ ./resp_client 6380 GRAPH.QUERY g "MATCH (n) RETURN count(n)"
//   $ echo 'GRAPH.QUERY g "CREATE (:A)"' | ./resp_client 127.0.0.1 6380
//
// Sends commands in RESP array framing (exactly what redis-cli does) and
// pretty-prints decoded replies.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "server/resp.hpp"
#include "util/socket.hpp"

namespace {

using rg::server::RespValue;

void print_reply(const RespValue& v, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  switch (v.kind) {
    case RespValue::Kind::kSimple:
      std::printf("%s%s\n", pad.c_str(), v.text.c_str());
      break;
    case RespValue::Kind::kError:
      std::printf("%s(error) %s\n", pad.c_str(), v.text.c_str());
      break;
    case RespValue::Kind::kInteger:
      std::printf("%s(integer) %lld\n", pad.c_str(), v.integer);
      break;
    case RespValue::Kind::kBulk:
      std::printf("%s\"%s\"\n", pad.c_str(), v.text.c_str());
      break;
    case RespValue::Kind::kNull:
      std::printf("%s(nil)\n", pad.c_str());
      break;
    case RespValue::Kind::kArray:
      if (v.elems.empty()) {
        std::printf("%s(empty array)\n", pad.c_str());
        break;
      }
      for (std::size_t i = 0; i < v.elems.size(); ++i) {
        std::printf("%s%zu)\n", pad.c_str(), i + 1);
        print_reply(v.elems[i], indent + 1);
      }
      break;
  }
}

/// Send one command and block for its reply.  Returns false on EOF.
bool roundtrip(rg::util::TcpStream& conn, std::string& rxbuf,
               const std::vector<std::string>& argv) {
  conn.write_all(rg::server::encode_command(argv));
  for (;;) {
    RespValue reply;
    const std::size_t used = rg::server::decode_reply(rxbuf, reply);
    if (used > 0) {
      rxbuf.erase(0, used);
      print_reply(reply, 0);
      return true;
    }
    char buf[16384];
    const std::size_t got = conn.read_some(buf, sizeof(buf));
    if (got == 0) return false;
    rxbuf.append(buf, got);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s [host] <port> [command args...]\n",
                 argv[0]);
    return 2;
  }
  // Optional leading host: detect by whether argv[1] parses as a port.
  std::string host = "127.0.0.1";
  int argi = 1;
  char* end = nullptr;
  unsigned long port = std::strtoul(argv[argi], &end, 10);
  if (*end != '\0' || port == 0 || port > 65535) {
    if (argc < 3) {
      std::fprintf(stderr, "usage: %s [host] <port> [command args...]\n",
                   argv[0]);
      return 2;
    }
    host = argv[argi++];
    port = std::strtoul(argv[argi], &end, 10);
    if (*end != '\0' || port == 0 || port > 65535) {
      std::fprintf(stderr, "bad port '%s'\n", argv[argi]);
      return 2;
    }
  }
  ++argi;

  try {
    auto conn = rg::util::TcpStream::connect(
        host, static_cast<std::uint16_t>(port));
    std::string rxbuf;

    if (argi < argc) {
      // One-shot: remaining argv is the command.
      std::vector<std::string> cmd(argv + argi, argv + argc);
      return roundtrip(conn, rxbuf, cmd) ? 0 : 1;
    }

    // Interactive: one command line per stdin line.
    std::string line;
    while (std::getline(std::cin, line)) {
      const auto cmd = rg::server::split_command_line(line);
      if (cmd.empty()) continue;
      if (!roundtrip(conn, rxbuf, cmd)) {
        std::fprintf(stderr, "connection closed by server\n");
        return 1;
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

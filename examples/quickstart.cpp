// Quickstart: create a small social graph through the Redis-like server
// API (GRAPH.QUERY with Cypher) and query it — the fastest way to see
// the whole stack working.
//
//   $ ./quickstart
#include <cstdio>
#include <iostream>

#include "server/server.hpp"

int main() {
  using rg::server::Server;
  Server server(/*worker_threads=*/2);

  // Build a small social network, exactly as a Redis client would.
  auto r = server.execute(
      {"GRAPH.QUERY", "social",
       "CREATE (alice:Person {name:'Alice', age:32}),"
       "       (bob:Person {name:'Bob', age:29}),"
       "       (carol:Person {name:'Carol', age:41}),"
       "       (dave:Person {name:'Dave', age:23}),"
       "       (alice)-[:KNOWS {since:2015}]->(bob),"
       "       (bob)-[:KNOWS {since:2018}]->(carol),"
       "       (carol)-[:KNOWS {since:2020}]->(dave),"
       "       (alice)-[:KNOWS {since:2021}]->(carol)"});
  if (!r.ok()) {
    std::cerr << "create failed: " << r.text << "\n";
    return 1;
  }
  std::cout << "Created social graph: " << r.result.stats.nodes_created
            << " nodes, " << r.result.stats.edges_created << " edges\n\n";

  // Who does Alice know, directly?
  r = server.execute({"GRAPH.QUERY", "social",
                      "MATCH (a:Person {name:'Alice'})-[:KNOWS]->(b) "
                      "RETURN b.name, b.age ORDER BY b.name"});
  std::cout << "Alice knows directly:\n" << r.result.to_string() << "\n";

  // Friends-of-friends (1..2 hops) — the matrix-powered traversal.
  r = server.execute({"GRAPH.QUERY", "social",
                      "MATCH (a:Person {name:'Alice'})-[:KNOWS*1..2]->(b) "
                      "RETURN count(DISTINCT b) AS reachable"});
  std::cout << "People within 2 hops of Alice:\n"
            << r.result.to_string() << "\n";

  // Inspect the execution plan — note the GraphBLAS traverse operators.
  r = server.execute({"GRAPH.EXPLAIN", "social",
                      "MATCH (a:Person {name:'Alice'})-[:KNOWS*1..2]->(b) "
                      "RETURN count(DISTINCT b)"});
  std::cout << "Execution plan:\n" << r.text << "\n";

  // Aggregation with grouping.
  r = server.execute({"GRAPH.QUERY", "social",
                      "MATCH (a:Person)-[:KNOWS]->(b:Person) "
                      "RETURN a.name, count(*) AS degree, avg(b.age) AS avg_age "
                      "ORDER BY degree DESC, a.name"});
  std::cout << "Out-degree and friend ages:\n" << r.result.to_string() << "\n";
  return 0;
}

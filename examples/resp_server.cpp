// resp_server — start the graph engine as a standalone TCP service.
//
//   $ ./resp_server [--port 6380] [--threads 4] [--gb-threads N]
//                   [--any-interface] [--data-dir DIR]
//                   [--fsync always|everysec|no] [--dump-commands]
//                   [--replicaof HOST:PORT]
//
// --dump-commands prints the command reference (a markdown table
// generated from the registry's CommandSpec rows) and exits; the README
// copy of the table is gated against this output by
// ci/check_command_docs.py.
//
// With --data-dir the server is durable: it recovers snapshot + WAL
// state from DIR at startup and journals every write, so a crash (or
// kill -9) loses nothing past the fsync policy's window.
//
// With --replicaof the server starts as a read-only replica of the
// given primary (same as issuing REPLICAOF HOST PORT after startup):
// it full-syncs over a dedicated connection, then tails the primary's
// WAL; promote with `redis-cli REPLICAOF NO ONE`.
//
// Speaks RESP on the socket, so any Redis client works:
//   $ redis-cli -p 6380 GRAPH.QUERY g "CREATE (:Person {name:'ann'})"
//   $ redis-cli -p 6380 GRAPH.QUERY g "MATCH (p:Person) RETURN p.name"
// or use the bundled client:
//   $ ./resp_client 6380 GRAPH.QUERY g "MATCH (p:Person) RETURN p.name"
//
// Runs until stdin reaches EOF or SIGINT/SIGTERM arrives.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/command.hpp"
#include "server/net_server.hpp"
#include "server/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  unsigned port = 6380;
  unsigned threads = 4;
  bool loopback_only = true;
  std::string primary_host;
  unsigned primary_port = 0;
  rg::server::DurabilityConfig durability;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--gb-threads") == 0 && i + 1 < argc) {
      // Intra-operation kernel parallelism (GRAPH.CONFIG SET GB_THREADS
      // retunes it at runtime; 1 = exact serial kernels, 0 = hardware).
      rg::gb::set_threads(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--dump-commands") == 0) {
      std::fputs(rg::server::command_table_markdown().c_str(), stdout);
      return 0;
    } else if (std::strcmp(argv[i], "--any-interface") == 0) {
      loopback_only = false;
    } else if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      durability.data_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--fsync") == 0 && i + 1 < argc) {
      try {
        durability.options.fsync = rg::persist::parse_fsync_policy(argv[++i]);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--replicaof") == 0 && i + 1 < argc) {
      const char* colon = std::strrchr(argv[++i], ':');
      if (!colon || colon == argv[i]) {
        std::fprintf(stderr, "--replicaof expects HOST:PORT\n");
        return 2;
      }
      primary_host.assign(argv[i], static_cast<std::size_t>(colon - argv[i]));
      primary_port =
          static_cast<unsigned>(std::strtoul(colon + 1, nullptr, 10));
      if (primary_port == 0 || primary_port > 65535) {
        std::fprintf(stderr, "--replicaof port must be in [1, 65535]\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--threads N] [--gb-threads N]\n"
                   "          [--any-interface] [--data-dir DIR]\n"
                   "          [--fsync always|everysec|no] [--dump-commands]\n"
                   "          [--replicaof HOST:PORT]\n",
                   argv[0]);
      return 2;
    }
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  rg::server::Server core(threads, durability);
  rg::server::NetServer net(core, static_cast<std::uint16_t>(port),
                            loopback_only);
  std::printf("listening on %s:%u (%u workers) — Ctrl-C to stop\n",
              loopback_only ? "127.0.0.1" : "0.0.0.0", net.port(), threads);
  if (!durability.data_dir.empty())
    std::printf("durable: data dir %s, fsync %s\n",
                durability.data_dir.c_str(),
                rg::persist::fsync_policy_name(durability.options.fsync));
  if (!primary_host.empty()) {
    core.replicaof(primary_host,
                   static_cast<std::uint16_t>(primary_port));
    std::printf("replicating from %s:%u (read-only; REPLICAOF NO ONE "
                "to promote)\n",
                primary_host.c_str(), primary_port);
  }
  std::fflush(stdout);

  // Park until a signal arrives (or stdin closes when run under a
  // harness that manages lifetime by pipe).
  while (!g_stop) {
    char c;
    const ssize_t n = ::read(STDIN_FILENO, &c, 1);
    if (n == 0) break;           // EOF
    if (n < 0 && errno != EINTR) break;
  }
  std::printf("shutting down (%llu connections served)\n",
              static_cast<unsigned long long>(net.connections_accepted()));
  return 0;
}

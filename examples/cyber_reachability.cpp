// Cyber security reachability — the paper's third motivating use case.
// Models a network of hosts with OBSERVED connections, marks a breached
// host, and answers: which critical assets are reachable from the breach
// within k lateral movements?  Uses the k-hop kernel (the benchmark
// workload) on a live property graph plus Cypher filtering by asset tag.
//
//   $ ./cyber_reachability [hosts] [connections] [k]
#include <cstdlib>
#include <iostream>

#include "algo/khop.hpp"
#include "datagen/generators.hpp"
#include "exec/query.hpp"
#include "graph/graph.hpp"
#include "util/random.hpp"

int main(int argc, char** argv) {
  using namespace rg;
  const gb::Index n = argc > 1 ? std::atoll(argv[1]) : 5000;
  const std::size_t m = argc > 2 ? std::atoll(argv[2]) : 40000;
  const unsigned k = argc > 3 ? std::atoi(argv[3]) : 3;

  util::Pcg32 rng(7);
  graph::Graph g(n);
  const auto host = g.schema().add_label("Host");
  const auto critical = g.schema().add_label("Critical");
  const auto conn = g.schema().add_reltype("CONNECTS");

  for (gb::Index v = 0; v < n; ++v) {
    g.add_node({host});
    if (rng.uniform() < 0.01) g.add_node_label(v, critical);  // ~1% critical
  }
  // Scale-free-ish connection graph: preferential attachment flavor.
  for (std::size_t e = 0; e < m; ++e) {
    const gb::Index u = rng.bounded64(n);
    // Bias targets toward low ids (hubs).
    const gb::Index v = static_cast<gb::Index>(
        static_cast<double>(n) * rng.uniform() * rng.uniform());
    if (u != v) g.add_edge(conn, u, std::min(v, n - 1));
  }
  g.flush();

  const gb::Index breach = rng.bounded64(n);
  std::cout << "Breached host: " << breach << "\n";

  // Blast radius via the k-hop kernel (what the benchmark measures).
  const auto& A = g.adjacency();
  const auto& AT = g.adjacency_t();
  for (unsigned hops = 1; hops <= k; ++hops) {
    const auto st = algo::khop_count(A, AT, breach, hops);
    std::cout << "  within " << hops << " hops: " << st.count
              << " hosts reachable\n";
  }

  // Which *critical* assets are exposed within k hops?  Cypher surface.
  auto rs = exec::query(
      g, "MATCH (b:Host)-[:CONNECTS*1.." + std::to_string(k) +
         "]->(c:Critical) WHERE id(b) = " + std::to_string(breach) +
         " RETURN count(DISTINCT c) AS exposed_critical");
  std::cout << "\nCritical assets exposed within " << k << " hops:\n"
            << rs.to_string();

  // Rank exposed critical assets by in-degree (attack surface).
  rs = exec::query(
      g, "MATCH (b:Host)-[:CONNECTS*1.." + std::to_string(k) +
         "]->(c:Critical)<-[:CONNECTS]-(peer) WHERE id(b) = " +
         std::to_string(breach) +
         " RETURN id(c) AS asset, count(peer) AS fan_in "
         "ORDER BY fan_in DESC LIMIT 10");
  std::cout << "\nMost-connected exposed critical assets:\n" << rs.to_string();
  return 0;
}

// Real-time recommendation engine — one of the paper's motivating use
// cases (Section I).  Generates a power-law follower graph, then for a
// set of users computes friend-of-friend recommendations two ways:
//
//   1. through Cypher (the product surface), and
//   2. through the GraphBLAS kernel API (masked mxv), showing how the
//      same linear-algebra primitive backs the query.
//
//   $ ./social_recommendation [scale] [edgefactor]
#include <cstdlib>
#include <iostream>
#include <map>

#include "algo/khop.hpp"
#include "datagen/generators.hpp"
#include "exec/query.hpp"
#include "graph/graph.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace rg;
  const unsigned scale = argc > 1 ? std::atoi(argv[1]) : 12;
  const unsigned edgefactor = argc > 2 ? std::atoi(argv[2]) : 8;

  std::cout << "Generating follower graph (scale " << scale << ")...\n";
  const auto el = datagen::twitter_like(scale, edgefactor, /*seed=*/1);
  std::cout << "  " << datagen::describe(el) << "\n";

  // Load into the property graph.
  graph::Graph g(el.nvertices);
  const auto user = g.schema().add_label("User");
  const auto follows = g.schema().add_reltype("FOLLOWS");
  const auto handle = g.schema().add_attr("handle");
  for (gb::Index v = 0; v < el.nvertices; ++v) {
    graph::AttributeSet attrs;
    attrs.set(handle, graph::Value("user" + std::to_string(v)));
    g.add_node({user}, std::move(attrs));
  }
  for (const auto& [u, v] : el.edges) g.add_edge(follows, u, v);
  g.flush();

  const auto seeds = datagen::pick_seeds(el, 3, 99);

  // --- Cypher surface -------------------------------------------------------
  std::cout << "\n== Recommendations via Cypher ==\n";
  for (const auto s : seeds) {
    util::Stopwatch sw;
    // People my followees follow whom I do not already follow.
    auto rs = exec::query(
        g, "MATCH (me:User)-[:FOLLOWS]->(:User)-[:FOLLOWS]->(rec:User) "
           "WHERE id(me) = " + std::to_string(s) +
           " AND rec.handle <> me.handle "
           "RETURN rec.handle, count(*) AS paths "
           "ORDER BY paths DESC, rec.handle LIMIT 5");
    std::cout << "user" << s << " (" << util::fmt_double(sw.millis(), 2)
              << " ms):\n";
    for (const auto& row : rs.rows)
      std::cout << "    " << row[0].to_string() << "  via "
                << row[1].to_string() << " paths\n";
  }

  // --- GraphBLAS kernel -----------------------------------------------------
  std::cout << "\n== Same recommendation as a masked matrix product ==\n";
  const auto& A = g.relation(follows);
  const auto AT = gb::transposed(A);
  for (const auto s : seeds) {
    util::Stopwatch sw;
    // paths(v) = sum over my followees f of A(f, v), excluding already-
    // followed and self: one masked vxm over plus/times.
    gb::Vector<std::uint64_t> me(A.nrows());
    me.set_element(s, 1);
    gb::Matrix<std::uint64_t> A64(A.nrows(), A.ncols());
    {
      std::vector<gb::Index> r, c;
      std::vector<gb::Bool> v;
      A.extract_tuples(r, c, v);
      std::vector<std::uint64_t> ones(r.size(), 1);
      A64.build(r, c, ones);
    }
    gb::Vector<std::uint64_t> hop1(A.nrows());
    gb::vxm(hop1, static_cast<const gb::Vector<gb::Bool>*>(nullptr),
            gb::NoAccum{}, gb::plus_times<std::uint64_t>(), me, A64);
    gb::Vector<std::uint64_t> hop2(A.nrows());
    // Mask out direct followees (complemented structural mask).
    gb::Descriptor desc;
    desc.mask_complement = true;
    desc.mask_structural = true;
    gb::Vector<gb::Bool> direct(A.nrows());
    hop1.for_each([&](gb::Index i, std::uint64_t) { direct.set_element(i, 1); });
    direct.set_element(s, 1);  // exclude self too
    gb::vxm(hop2, &direct, gb::NoAccum{}, gb::plus_times<std::uint64_t>(),
            hop1, A64);
    // Top-5 by path count.
    std::multimap<std::uint64_t, gb::Index, std::greater<>> top;
    hop2.for_each([&](gb::Index i, std::uint64_t paths) {
      top.emplace(paths, i);
    });
    std::cout << "user" << s << " (" << util::fmt_double(sw.millis(), 2)
              << " ms): ";
    int shown = 0;
    for (const auto& [paths, v] : top) {
      if (shown++ == 5) break;
      std::cout << "user" << v << "(" << paths << ") ";
    }
    std::cout << "\n";
  }
  return 0;
}

# Convenience wrapper around the CMake build.  The canonical (tier-1)
# command sequence is in README.md; these targets just save typing.
BUILD_DIR ?= build
BUILD_TYPE ?= Release
JOBS ?= $(shell nproc)

.PHONY: all build test smoke asan bench clean

all: build

build:
	cmake -B $(BUILD_DIR) -S . -DCMAKE_BUILD_TYPE=$(BUILD_TYPE)
	cmake --build $(BUILD_DIR) -j $(JOBS)

test: build
	cd $(BUILD_DIR) && ctest --output-on-failure -j $(JOBS)

smoke: build
	cd $(BUILD_DIR) && ctest -L smoke --output-on-failure -j $(JOBS)

asan:
	cmake -B $(BUILD_DIR)-asan -S . -DCMAKE_BUILD_TYPE=Debug \
	  -DRG_SANITIZE=ON -DRG_BUILD_BENCH=OFF -DRG_BUILD_EXAMPLES=OFF
	cmake --build $(BUILD_DIR)-asan -j $(JOBS)
	cd $(BUILD_DIR)-asan && ctest -L smoke --output-on-failure -j $(JOBS)

bench: build
	$(BUILD_DIR)/bench/bench_fig1_onehop --quick
	$(BUILD_DIR)/bench/bench_khop_table --quick

clean:
	rm -rf $(BUILD_DIR) $(BUILD_DIR)-asan
